//! `cargo xtask trace` — offline analysis of causal JSONL traces.
//!
//! Two subcommands over the span-lineage traces the obs registry writes:
//!
//! * `trace report` rebuilds the span forest from a trace, prints the
//!   per-stage wall/self-time table (with exact nearest-rank
//!   p50/p95/p99), the cache-efficacy join, and can persist the
//!   deterministic profile JSON (`--profile-out`) and a folded-stack
//!   flamegraph (`--folded-out`, speedscope/inferno format);
//! * `trace diff` compares two persisted profiles and attributes the
//!   per-point cost change to individual stages, failing when the new
//!   per-point cost regressed beyond a tolerance.
//!
//! All heavy lifting lives in [`efficsense_obs::profile`]; this module is
//! the CLI veneer (argument parsing, table rendering, file I/O).

use efficsense_obs::profile::{self, Profile, ProfileDiff};
use std::path::PathBuf;

/// Default fractional per-point regression tolerance for `trace diff`,
/// matching the bench-diff gate: CI boxes are noisy, 2x is a bug.
pub const DEFAULT_TOLERANCE: f64 = 0.3;

/// Parsed `trace report` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportArgs {
    /// JSONL trace to analyse.
    pub input: PathBuf,
    /// Where to write the profile JSON, if anywhere.
    pub profile_out: Option<PathBuf>,
    /// Where to write the folded flamegraph text, if anywhere.
    pub folded_out: Option<PathBuf>,
}

/// Parsed `trace diff` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffArgs {
    /// Baseline profile JSON path.
    pub old: PathBuf,
    /// Candidate profile JSON path.
    pub new: PathBuf,
    /// Fractional per-point regression tolerance.
    pub tolerance: f64,
}

/// Parses `trace report` options.
pub fn parse_report_args(args: &[String]) -> Result<ReportArgs, String> {
    let mut input: Option<PathBuf> = None;
    let mut profile_out = None;
    let mut folded_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match (a.as_str(), it.next()) {
            ("--input", Some(p)) => input = Some(PathBuf::from(p)),
            ("--profile-out", Some(p)) => profile_out = Some(PathBuf::from(p)),
            ("--folded-out", Some(p)) => folded_out = Some(PathBuf::from(p)),
            (opt @ ("--input" | "--profile-out" | "--folded-out"), None) => {
                return Err(format!("{opt} requires a path argument"));
            }
            (other, _) => return Err(format!("unknown trace report option `{other}`")),
        }
    }
    Ok(ReportArgs {
        input: input.ok_or("trace report requires --input <trace.jsonl>")?,
        profile_out,
        folded_out,
    })
}

/// Parses `trace diff` options: two positional profile paths plus an
/// optional `--tolerance`.
pub fn parse_diff_args(args: &[String]) -> Result<DiffArgs, String> {
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => match it.next().map(|t| t.parse::<f64>()) {
                Some(Ok(v)) if (0.0..1.0).contains(&v) => tolerance = v,
                _ => return Err("--tolerance must be a fraction in [0, 1)".to_string()),
            },
            other if other.starts_with("--") => {
                return Err(format!("unknown trace diff option `{other}`"));
            }
            p => positional.push(PathBuf::from(p)),
        }
    }
    match <[PathBuf; 2]>::try_from(positional) {
        Ok([old, new]) => Ok(DiffArgs {
            old,
            new,
            tolerance,
        }),
        Err(_) => {
            Err("trace diff requires exactly two profile paths: <old.prof> <new.prof>".to_string())
        }
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the human-readable report for one profile: forest summary,
/// per-stage table sorted by self time, and the cache-efficacy join.
#[must_use]
pub fn render_report(p: &Profile) -> String {
    let mut out = format!(
        "trace: {} events, {} stage(s), {} stack path(s), {} skipped line(s), {} orphan(s)\n",
        p.events,
        p.stages.len(),
        p.stacks.len(),
        p.skipped_lines,
        p.orphans
    );
    let total_self: u64 = p.stages.values().map(|s| s.self_ns).sum();
    out.push_str(&format!(
        "\n{:<22} {:>8} {:>11} {:>11} {:>6} {:>9} {:>9} {:>9}\n",
        "stage", "count", "total_ms", "self_ms", "self%", "p50_us", "p95_us", "p99_us"
    ));
    let mut rows: Vec<(&String, &profile::StageStats)> = p.stages.iter().collect();
    rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then_with(|| a.0.cmp(b.0)));
    for (name, s) in rows {
        let share = if total_self == 0 {
            0.0
        } else {
            100.0 * s.self_ns as f64 / total_self as f64
        };
        out.push_str(&format!(
            "{name:<22} {:>8} {:>11.3} {:>11.3} {share:>5.1}% {:>9.1} {:>9.1} {:>9.1}\n",
            s.count,
            ms(s.total_ns),
            ms(s.self_ns),
            s.p50_ns as f64 / 1e3,
            s.p95_ns as f64 / 1e3,
            s.p99_ns as f64 / 1e3,
        ));
    }
    let cache = profile::cache_efficacy(p);
    if !cache.is_empty() {
        out.push_str(&format!(
            "\n{:<14} {:>10} {:>10} {:>9} {:>7} {:>14} {:>13}\n",
            "cache level", "hits", "misses", "evicts", "hit%", "miss_cost_us", "saved_ms"
        ));
        for r in &cache {
            let lookups = r.hits + r.misses;
            let hit_pct = if lookups == 0 {
                0.0
            } else {
                100.0 * r.hits as f64 / lookups as f64
            };
            let cost = r
                .est_miss_cost_ns
                .map_or("-".to_string(), |c| format!("{:.1}", c / 1e3));
            let saved = r
                .est_saved_ns
                .map_or("-".to_string(), |s| format!("{:.3}", s / 1e6));
            out.push_str(&format!(
                "{:<14} {:>10} {:>10} {:>9} {hit_pct:>6.1}% {cost:>14} {saved:>13}\n",
                r.level, r.hits, r.misses, r.evictions
            ));
        }
    }
    out
}

/// Renders the stage-attribution table for a profile diff.
#[must_use]
pub fn render_diff(d: &ProfileDiff, tolerance: f64) -> String {
    let mut out = format!(
        "trace diff: {} -> {} point(s); mean point {:.3} -> {:.3} ms (tolerance {:.0}%)\n",
        d.old_points,
        d.new_points,
        d.old_point_ns / 1e6,
        d.new_point_ns / 1e6,
        tolerance * 100.0
    );
    out.push_str(&format!(
        "\n{:<22} {:>14} {:>14} {:>14}\n",
        "stage", "old_us/pt", "new_us/pt", "delta_us/pt"
    ));
    for s in &d.stages {
        // Sub-0.05 µs/pt deltas are formatting noise at this precision.
        if s.delta_pp_ns.abs() < 50.0 && s.old_self_pp_ns < 50.0 && s.new_self_pp_ns < 50.0 {
            continue;
        }
        out.push_str(&format!(
            "{:<22} {:>14.1} {:>14.1} {:>+14.1}\n",
            s.name,
            s.old_self_pp_ns / 1e3,
            s.new_self_pp_ns / 1e3,
            s.delta_pp_ns / 1e3
        ));
    }
    if d.regressed(tolerance) {
        out.push_str(&format!(
            "trace diff: FAIL — per-point cost regressed beyond {:.0}% tolerance\n",
            tolerance * 100.0
        ));
    } else {
        out.push_str("trace diff: ok\n");
    }
    out
}

/// Runs `trace report`: returns the rendered report, writing the optional
/// artifacts on the way.
pub fn run_report(args: &ReportArgs) -> Result<String, String> {
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read trace {}: {e}", args.input.display()))?;
    let p = Profile::from_trace(&text);
    if let Some(path) = &args.profile_out {
        std::fs::write(path, p.to_json() + "\n")
            .map_err(|e| format!("cannot write profile {}: {e}", path.display()))?;
    }
    if let Some(path) = &args.folded_out {
        std::fs::write(path, p.to_folded())
            .map_err(|e| format!("cannot write folded stacks {}: {e}", path.display()))?;
    }
    Ok(render_report(&p))
}

/// Runs `trace diff`: returns the rendered attribution plus whether the
/// new profile regressed.
pub fn run_diff(args: &DiffArgs) -> Result<(String, bool), String> {
    let load = |label: &str, path: &PathBuf| {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {label} profile {}: {e}", path.display()))?;
        Profile::parse(&text).ok_or_else(|| {
            format!(
                "{label} profile {} is not valid profile JSON",
                path.display()
            )
        })
    };
    let old = load("old", &args.old)?;
    let new = load("new", &args.new)?;
    let d = profile::diff(&old, &new);
    Ok((render_diff(&d, args.tolerance), d.regressed(args.tolerance)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn report_args_require_input() {
        assert!(parse_report_args(&[]).is_err());
        let args = parse_report_args(&s(&[
            "--input",
            "t.jsonl",
            "--profile-out",
            "p.json",
            "--folded-out",
            "f.folded",
        ]))
        .expect("parses");
        assert_eq!(args.input, PathBuf::from("t.jsonl"));
        assert_eq!(args.profile_out, Some(PathBuf::from("p.json")));
        assert_eq!(args.folded_out, Some(PathBuf::from("f.folded")));
        assert!(parse_report_args(&s(&["--input"])).is_err());
        assert!(parse_report_args(&s(&["--bogus", "x"])).is_err());
    }

    #[test]
    fn diff_args_take_two_positionals_and_a_tolerance() {
        let args =
            parse_diff_args(&s(&["a.prof", "b.prof", "--tolerance", "0.1"])).expect("parses");
        assert_eq!(args.old, PathBuf::from("a.prof"));
        assert_eq!(args.new, PathBuf::from("b.prof"));
        assert!((args.tolerance - 0.1).abs() < 1e-12);
        assert!(parse_diff_args(&s(&["only-one.prof"])).is_err());
        assert!(parse_diff_args(&s(&["a", "b", "c"])).is_err());
        assert!(parse_diff_args(&s(&["a", "b", "--tolerance", "2.0"])).is_err());
    }

    fn sample_profile() -> Profile {
        Profile::from_trace(concat!(
            "{\"ts_ns\":1,\"kind\":\"span\",\"name\":\"sweep.point\",",
            "\"fields\":{\"span\":1,\"thread\":0,\"total_ns\":8000,\"self_ns\":3000}}\n",
            "{\"ts_ns\":2,\"kind\":\"span\",\"name\":\"stage.simulate\",",
            "\"fields\":{\"span\":2,\"parent\":1,\"thread\":0,\"total_ns\":5000,\"self_ns\":5000}}\n",
            "{\"ts_ns\":3,\"kind\":\"counters\",\"name\":\"registry.counters\",",
            "\"fields\":{\"cache.l1.hit\":7,\"cache.l1.miss\":3,\"sweep.evaluations\":3}}\n",
        ))
    }

    #[test]
    fn report_renders_stage_table_and_cache_join() {
        let rendered = render_report(&sample_profile());
        assert!(rendered.contains("sweep.point"), "{rendered}");
        assert!(rendered.contains("stage.simulate"), "{rendered}");
        assert!(rendered.contains("l1.point"), "{rendered}");
        assert!(rendered.contains("70.0%"), "l1 hit rate:\n{rendered}");
    }

    #[test]
    fn diff_render_flags_regressions() {
        let old = sample_profile();
        let mut new = old.clone();
        if let Some(s) = new.stages.get_mut("sweep.point") {
            s.total_ns *= 3;
            s.self_ns *= 3;
        }
        let d = profile::diff(&old, &new);
        assert!(d.regressed(DEFAULT_TOLERANCE));
        let rendered = render_diff(&d, DEFAULT_TOLERANCE);
        assert!(rendered.contains("FAIL"), "{rendered}");
        let ok = render_diff(&profile::diff(&old, &old), DEFAULT_TOLERANCE);
        assert!(ok.contains("trace diff: ok"), "{ok}");
    }

    #[test]
    fn run_report_and_diff_round_trip_through_files() {
        let dir = std::env::temp_dir().join(format!(
            "xtask-trace-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let trace = dir.join("trace.jsonl");
        std::fs::write(
            &trace,
            concat!(
                "{\"ts_ns\":1,\"kind\":\"span\",\"name\":\"sweep.point\",",
                "\"fields\":{\"span\":1,\"thread\":0,\"total_ns\":8000,\"self_ns\":8000}}\n",
            ),
        )
        .expect("write trace");
        let prof = dir.join("p.prof.json");
        let folded = dir.join("p.folded");
        let report = run_report(&ReportArgs {
            input: trace,
            profile_out: Some(prof.clone()),
            folded_out: Some(folded.clone()),
        })
        .expect("report runs");
        assert!(report.contains("sweep.point"));
        let folded_text = std::fs::read_to_string(&folded).expect("folded written");
        assert_eq!(folded_text, "sweep.point 8000\n");
        let (rendered, regressed) = run_diff(&DiffArgs {
            old: prof.clone(),
            new: prof.clone(),
            tolerance: DEFAULT_TOLERANCE,
        })
        .expect("diff runs");
        assert!(!regressed, "{rendered}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
