//! Zero-dependency token stream over preprocessed Rust source.
//!
//! [`crate::source::SourceFile`] blanks comments and literals while keeping
//! line structure; this module lexes that *clean* text into a stream of
//! identifiers, numbers, lifetimes and (multi-char aware) punctuation, each
//! tagged with its 1-based line and column. On top of the raw stream a
//! lightweight scope tracker records the enclosing `fn` / `impl` / `mod` /
//! `trait` item for every token, so rules can ask "which function am I in"
//! instead of guessing from indentation.
//!
//! The lexer is deliberately not a full Rust parser: it only needs to be
//! right about token boundaries and brace nesting, which is what the lint
//! rules match on. Generic angle brackets are not tracked as delimiters —
//! rules that skip generics do so locally.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, ...).
    Ident,
    /// `'a`-style lifetime (char literals are blanked before lexing).
    Lifetime,
    /// Integer or float literal, including suffixes (`1_000u64`, `1.5e-3`).
    Number {
        /// `true` for decimal/exponent/float-suffixed literals.
        is_float: bool,
    },
    /// Punctuation; multi-char operators (`::`, `->`, `==`, ...) are one
    /// token.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Source text of the token.
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in chars).
    pub col: usize,
}

/// Item scope classification for the scope tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// File root (scope id 0).
    Root,
    /// `fn` body.
    Fn,
    /// `impl` block.
    Impl,
    /// Inline `mod` body.
    Mod,
    /// `trait` body.
    Trait,
    /// Any other brace pair (blocks, struct bodies, match arms, ...).
    Block,
}

/// A node in the scope tree.
#[derive(Debug, Clone)]
pub struct Scope {
    /// What introduced this scope.
    pub kind: ScopeKind,
    /// Item name (`fn foo` → `foo`; empty for blocks and the root).
    pub name: String,
    /// Parent scope id (the root is its own parent).
    pub parent: usize,
}

/// A lexed file: tokens plus the scope tree and a per-token scope id.
#[derive(Debug)]
pub struct TokenStream {
    /// The tokens in source order.
    pub tokens: Vec<Token>,
    /// Scope table; index 0 is the file root.
    pub scopes: Vec<Scope>,
    /// `scope_of[i]` is the scope id enclosing `tokens[i]`.
    pub scope_of: Vec<usize>,
}

/// Multi-char operators, longest first so maximal munch works.
const MULTI_PUNCT: [&str; 17] = [
    "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=", "-=", "*=", "/=",
    "<<", ">>",
];

impl TokenStream {
    /// Lexes preprocessed (comment/literal-blanked) source text.
    #[must_use]
    pub fn lex(clean: &str) -> Self {
        let chars: Vec<char> = clean.chars().collect();
        let mut tokens = Vec::new();
        let mut line = 1usize;
        let mut col = 1usize;
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c == '\n' {
                line += 1;
                col = 1;
                i += 1;
                continue;
            }
            if c.is_whitespace() {
                col += 1;
                i += 1;
                continue;
            }
            let start_col = col;
            // Lifetime (char literals are already blanked, so a surviving
            // tick always introduces a lifetime or a label).
            if c == '\'' {
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                col += j - i;
                i = j;
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line,
                    col: start_col,
                });
                continue;
            }
            // Identifier / keyword (including raw identifiers `r#type`).
            if c.is_alphabetic() || c == '_' {
                let mut j = i;
                if c == 'r' && i + 1 < chars.len() && chars[i + 1] == '#' {
                    j += 2; // raw identifier prefix
                }
                let word_start = j;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                if j == word_start {
                    // `r#` not followed by an identifier: lex `r` alone.
                    j = i + 1;
                }
                let text: String = chars[word_start.min(j)..j].iter().collect();
                col += j - i;
                i = j;
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                    col: start_col,
                });
                continue;
            }
            // Number literal.
            if c.is_ascii_digit() {
                let (j, is_float) = lex_number(&chars, i);
                let text: String = chars[i..j].iter().collect();
                col += j - i;
                i = j;
                tokens.push(Token {
                    kind: TokenKind::Number { is_float },
                    text,
                    line,
                    col: start_col,
                });
                continue;
            }
            // Punctuation, multi-char operators first.
            let rest: String = chars[i..(i + 3).min(chars.len())].iter().collect();
            let mut matched = None;
            for op in MULTI_PUNCT {
                if rest.starts_with(op) {
                    // `..=` vs `..`: ranges like `0..10` must not eat `=`.
                    matched = Some(op);
                    break;
                }
            }
            let text = matched.map_or_else(|| c.to_string(), str::to_string);
            let len = text.chars().count();
            col += len;
            i += len;
            tokens.push(Token {
                kind: TokenKind::Punct,
                text,
                line,
                col: start_col,
            });
        }
        let (scopes, scope_of) = build_scopes(&tokens);
        TokenStream {
            tokens,
            scopes,
            scope_of,
        }
    }

    /// The nearest enclosing `fn` scope's name for `tokens[idx]`, if any.
    #[must_use]
    pub fn enclosing_fn(&self, idx: usize) -> Option<&str> {
        self.enclosing(idx, ScopeKind::Fn)
    }

    /// The nearest enclosing `impl` scope's name for `tokens[idx]`, if any.
    #[must_use]
    pub fn enclosing_impl(&self, idx: usize) -> Option<&str> {
        self.enclosing(idx, ScopeKind::Impl)
    }

    fn enclosing(&self, idx: usize, kind: ScopeKind) -> Option<&str> {
        let mut s = *self.scope_of.get(idx)?;
        loop {
            let scope = &self.scopes[s];
            if scope.kind == kind {
                return Some(&scope.name);
            }
            if s == 0 {
                return None;
            }
            s = scope.parent;
        }
    }

    /// Token index range `[start, end)` of the function body containing
    /// `tokens[idx]`, or `None` when the token sits outside any `fn`.
    #[must_use]
    pub fn fn_body_range(&self, idx: usize) -> Option<(usize, usize)> {
        let mut s = *self.scope_of.get(idx)?;
        let fn_scope = loop {
            if self.scopes[s].kind == ScopeKind::Fn {
                break s;
            }
            if s == 0 {
                return None;
            }
            s = self.scopes[s].parent;
        };
        // The fn scope covers every token whose scope chain includes it.
        let start = self
            .scope_of
            .iter()
            .position(|&t| self.chains_to(t, fn_scope))?;
        let end = self
            .scope_of
            .iter()
            .rposition(|&t| self.chains_to(t, fn_scope))
            .map_or(start, |e| e + 1);
        Some((start, end))
    }

    fn chains_to(&self, mut s: usize, target: usize) -> bool {
        loop {
            if s == target {
                return true;
            }
            if s == 0 {
                return false;
            }
            s = self.scopes[s].parent;
        }
    }

    /// `true` when the token at `idx` is an identifier with exactly `text`.
    #[must_use]
    pub fn is_ident(&self, idx: usize, text: &str) -> bool {
        self.tokens
            .get(idx)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
    }

    /// `true` when the token at `idx` has exactly `text` (any kind).
    #[must_use]
    pub fn is_text(&self, idx: usize, text: &str) -> bool {
        self.tokens.get(idx).is_some_and(|t| t.text == text)
    }

    /// `true` when `pat` matches the token texts starting at `idx`.
    #[must_use]
    pub fn matches(&self, idx: usize, pat: &[&str]) -> bool {
        pat.iter()
            .enumerate()
            .all(|(k, p)| self.is_text(idx + k, p))
    }
}

/// Lexes one number starting at `chars[i]`; returns (end, is_float).
fn lex_number(chars: &[char], i: usize) -> (usize, bool) {
    let n = chars.len();
    let mut j = i;
    let hex = j + 1 < n && chars[j] == '0' && matches!(chars[j + 1], 'x' | 'X' | 'b' | 'o');
    let mut is_float = false;
    // Integer part (also consumes type suffixes and hex digits).
    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
        // Exponent sign: `1e-6` — consume the sign when sandwiched between
        // an e/E and a digit, unless this is a hex/binary literal.
        if !hex
            && matches!(chars[j], 'e' | 'E')
            && j + 1 < n
            && matches!(chars[j + 1], '+' | '-')
            && j + 2 < n
            && chars[j + 2].is_ascii_digit()
        {
            is_float = true;
            j += 2;
            continue;
        }
        if !hex && matches!(chars[j], 'e' | 'E') && j + 1 < n && chars[j + 1].is_ascii_digit() {
            is_float = true;
        }
        j += 1;
    }
    // Fractional part: `.` followed by a digit (so `0..10` stays a range).
    if j + 1 < n && chars[j] == '.' && chars[j + 1].is_ascii_digit() {
        is_float = true;
        j += 1;
        while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
            if !hex
                && matches!(chars[j], 'e' | 'E')
                && j + 1 < n
                && matches!(chars[j + 1], '+' | '-')
                && j + 2 < n
                && chars[j + 2].is_ascii_digit()
            {
                j += 2;
                continue;
            }
            j += 1;
        }
    }
    let text: String = chars[i..j].iter().collect();
    if text.ends_with("f32") || text.ends_with("f64") {
        is_float = true;
    }
    (j, is_float)
}

/// Builds the scope tree by walking brace nesting and item keywords.
fn build_scopes(tokens: &[Token]) -> (Vec<Scope>, Vec<usize>) {
    let mut scopes = vec![Scope {
        kind: ScopeKind::Root,
        name: String::new(),
        parent: 0,
    }];
    let mut stack = vec![0usize];
    let mut scope_of = Vec::with_capacity(tokens.len());
    // An item header seen but whose `{` has not arrived yet.
    let mut pending: Option<(ScopeKind, String)> = None;
    for (i, t) in tokens.iter().enumerate() {
        let current = *stack.last().unwrap_or(&0);
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "fn") => {
                let name = tokens
                    .get(i + 1)
                    .filter(|n| n.kind == TokenKind::Ident)
                    .map(|n| n.text.clone())
                    .unwrap_or_default();
                pending = Some((ScopeKind::Fn, name));
            }
            (TokenKind::Ident, "impl") => {
                pending = Some((ScopeKind::Impl, impl_name(tokens, i)));
            }
            (TokenKind::Ident, "mod" | "trait") => {
                let kind = if t.text == "mod" {
                    ScopeKind::Mod
                } else {
                    ScopeKind::Trait
                };
                let name = tokens
                    .get(i + 1)
                    .filter(|n| n.kind == TokenKind::Ident)
                    .map(|n| n.text.clone())
                    .unwrap_or_default();
                pending = Some((kind, name));
            }
            (TokenKind::Punct, "{") => {
                let (kind, name) = pending.take().unwrap_or((ScopeKind::Block, String::new()));
                scopes.push(Scope {
                    kind,
                    name,
                    parent: current,
                });
                stack.push(scopes.len() - 1);
            }
            (TokenKind::Punct, "}") => {
                scope_of.push(current);
                if stack.len() > 1 {
                    stack.pop();
                }
                continue;
            }
            (TokenKind::Punct, ";") => {
                // Headerless declaration (`mod x;`, trait fn signature).
                pending = None;
            }
            _ => {}
        }
        scope_of.push(*stack.last().unwrap_or(&0));
    }
    (scopes, scope_of)
}

/// Name for an `impl` scope: the implemented-on type (`impl Trait for Type`
/// → `Type`; `impl Type` → `Type`), skipping generic parameter lists.
fn impl_name(tokens: &[Token], impl_idx: usize) -> String {
    let mut last_ident = String::new();
    let mut angle = 0i32;
    let mut saw_for = false;
    let mut for_ident = String::new();
    for t in tokens.iter().skip(impl_idx + 1) {
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "{") if angle <= 0 => break,
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") => angle -= 1,
            (TokenKind::Punct, ">>") => angle -= 2,
            (TokenKind::Ident, "for") if angle <= 0 => saw_for = true,
            (TokenKind::Ident, "where") if angle <= 0 => break,
            (TokenKind::Ident, w) if angle <= 0 => {
                if saw_for {
                    if for_ident.is_empty() {
                        for_ident = w.to_string();
                    }
                } else {
                    last_ident = w.to_string();
                }
            }
            _ => {}
        }
    }
    if saw_for && !for_ident.is_empty() {
        for_ident
    } else {
        last_ident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(ts: &TokenStream) -> Vec<&str> {
        ts.tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn lexes_idents_numbers_and_operators() {
        let ts = TokenStream::lex("let x = a.power_w == 1.0e-3 && n != 10;");
        assert_eq!(
            texts(&ts),
            vec!["let", "x", "=", "a", ".", "power_w", "==", "1.0e-3", "&&", "n", "!=", "10", ";"]
        );
        let float = ts.tokens.iter().find(|t| t.text == "1.0e-3").unwrap();
        assert_eq!(float.kind, TokenKind::Number { is_float: true });
        let int = ts.tokens.iter().find(|t| t.text == "10").unwrap();
        assert_eq!(int.kind, TokenKind::Number { is_float: false });
    }

    #[test]
    fn ranges_are_not_floats() {
        let ts = TokenStream::lex("for i in 0..10 {}");
        assert_eq!(
            texts(&ts),
            vec!["for", "i", "in", "0", "..", "10", "{", "}"]
        );
        assert!(ts
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Number { .. }))
            .all(|t| t.kind == TokenKind::Number { is_float: false }));
    }

    #[test]
    fn suffixed_and_exponent_literals_classify_as_float() {
        for lit in ["2f64", "1e6", "1E-9", "3.5f32", "1_000.25"] {
            let src = format!("let v = {lit};");
            let ts = TokenStream::lex(&src);
            let t = ts.tokens.iter().find(|t| t.text == lit).unwrap_or_else(|| {
                panic!("token {lit} not found in {:?}", texts(&ts));
            });
            assert_eq!(t.kind, TokenKind::Number { is_float: true }, "{lit}");
        }
        // Hex literals never classify as floats, even with an `e` digit.
        let ts = TokenStream::lex("let v = 0x1e3;");
        let t = ts.tokens.iter().find(|t| t.text == "0x1e3").unwrap();
        assert_eq!(t.kind, TokenKind::Number { is_float: false });
    }

    #[test]
    fn lines_and_columns_are_one_based() {
        let ts = TokenStream::lex("fn a() {}\n  fn b() {}\n");
        let b = ts.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!((b.line, b.col), (2, 6));
    }

    #[test]
    fn scope_tracker_names_enclosing_fn() {
        let src = "fn outer() { let x = 1; { inner_marker; } }\nfn later() { other_marker; }\n";
        let ts = TokenStream::lex(src);
        let at = |text: &str| ts.tokens.iter().position(|t| t.text == text).unwrap();
        assert_eq!(ts.enclosing_fn(at("inner_marker")), Some("outer"));
        assert_eq!(ts.enclosing_fn(at("other_marker")), Some("later"));
        assert_eq!(ts.enclosing_fn(at("later")), None, "fn keyword is outside");
    }

    #[test]
    fn scope_tracker_names_enclosing_impl() {
        let src = "impl Clock for MonotonicClock { fn now(&self) { marker; } }\n\
                   impl<K: Ord> Store<K> { fn get(&self) { marker2; } }\n";
        let ts = TokenStream::lex(src);
        let at = |text: &str| ts.tokens.iter().position(|t| t.text == text).unwrap();
        assert_eq!(ts.enclosing_impl(at("marker")), Some("MonotonicClock"));
        assert_eq!(ts.enclosing_fn(at("marker")), Some("now"));
        assert_eq!(ts.enclosing_impl(at("marker2")), Some("Store"));
    }

    #[test]
    fn mod_and_trait_scopes_are_tracked() {
        let src = "mod tests { fn t() { m; } }\ntrait T { fn d(&self) { n; } }\nmod decl;\n";
        let ts = TokenStream::lex(src);
        let at = |text: &str| ts.tokens.iter().position(|t| t.text == text).unwrap();
        let m_scope = ts.scope_of[at("m")];
        assert_eq!(ts.scopes[m_scope].kind, ScopeKind::Fn);
        assert_eq!(ts.scopes[ts.scopes[m_scope].parent].kind, ScopeKind::Mod);
        assert_eq!(ts.enclosing_fn(at("n")), Some("d"));
        // `mod decl;` never opens a scope.
        assert_eq!(ts.scope_of[at("decl")], 0);
    }

    #[test]
    fn fn_body_range_covers_the_whole_function() {
        let src = "fn f() { first; { nested; } last; }\nfn g() { outside; }\n";
        let ts = TokenStream::lex(src);
        let at = |text: &str| ts.tokens.iter().position(|t| t.text == text).unwrap();
        let (start, end) = ts.fn_body_range(at("nested")).unwrap();
        let covered: Vec<&str> = ts.tokens[start..end]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(covered.contains(&"first"));
        assert!(covered.contains(&"last"));
        assert!(!covered.contains(&"outside"));
    }

    #[test]
    fn raw_identifiers_lex_without_the_prefix() {
        let ts = TokenStream::lex("let r#type = 1;");
        assert_eq!(texts(&ts), vec!["let", "type", "=", "1", ";"]);
    }

    #[test]
    fn unsafe_code_attribute_is_one_ident() {
        // Token-level matching must not confuse `unsafe_code` (an attribute
        // argument) with the `unsafe` keyword.
        let ts = TokenStream::lex("#![deny(unsafe_code)]");
        assert!(ts.tokens.iter().any(|t| t.text == "unsafe_code"));
        assert!(!ts.tokens.iter().any(|t| t.text == "unsafe"));
    }
}
