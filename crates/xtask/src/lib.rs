//! Workspace automation library behind `cargo xtask`.
//!
//! Two subsystems, both std-only by design (they must build in the same
//! offline environment as the models they guard):
//!
//! - the domain-aware lint pass (`cargo xtask lint`) enforcing the numerical,
//!   unit-safety, determinism and concurrency invariants of the EffiCSense
//!   workspace — token-level matching lives in [`tokens`], the rule catalogue
//!   in [`rules`], machine-readable output in [`emit`], and the escape-count
//!   cap in [`budget`]; see DESIGN.md §"Token-level determinism auditing";
//! - the perf-trend gate (`cargo xtask bench-diff`) comparing sweep
//!   benchmark summaries — see [`bench_diff`];
//! - the causal trace analyser (`cargo xtask trace report|diff`) turning
//!   JSONL span traces into per-stage profiles, flamegraphs and
//!   regression attributions — see [`trace_cmd`].

pub mod bench_diff;
pub mod budget;
pub mod emit;
pub mod rules;
pub mod source;
pub mod tokens;
pub mod trace_cmd;

use rules::Diagnostic;
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Directories never descended into while walking the workspace.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// Everything one lint pass learned: the findings plus the live
/// `lint:allow` census the suppression budget is checked against.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Count of known-rule `lint:allow` escapes per rule id across the
    /// walked tree (stale escapes are counted too, but they already appear
    /// in `diagnostics` as `stale-allow` errors).
    pub allow_counts: BTreeMap<String, usize>,
}

/// Lints one source text under a workspace-relative virtual path.
///
/// This is the seam the fixture tests use: rule scoping keys off the path,
/// so a fixture stored under `tests/fixtures/` can impersonate, say,
/// `crates/dsp/src/kernel.rs`.
#[must_use]
pub fn lint_source(virtual_path: &str, text: &str) -> Vec<Diagnostic> {
    rules::check_file(&SourceFile::parse(virtual_path, text))
}

/// Walks `root` and lints every `.rs` file, returning diagnostics sorted by
/// path then line.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal and file reads.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    lint_workspace_report(root).map(|r| r.diagnostics)
}

/// Like [`lint_workspace`], but also reports the workspace-wide
/// `lint:allow` census for suppression-budget enforcement.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal and file reads.
pub fn lint_workspace_report(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut report = LintReport::default();
    for file in &files {
        let text = std::fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let f = SourceFile::parse(&rel, &text);
        for (_, rule) in &f.allows {
            if rules::rule_info(rule).is_some() {
                *report.allow_counts.entry(rule.clone()).or_insert(0) += 1;
            }
        }
        report.diagnostics.extend(rules::check_file(&f));
    }
    report
        .diagnostics
        .sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_scopes_rules_by_virtual_path() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_source("crates/cs/src/fake.rs", src).len(), 1);
        assert!(lint_source("crates/signals/src/fake.rs", src).is_empty());
    }

    #[test]
    fn clean_snippet_yields_no_diagnostics() {
        let src = "pub fn add(a: u32, b: u32) -> u32 { a + b }\n";
        assert!(lint_source("crates/core/src/fake.rs", src).is_empty());
    }
}
