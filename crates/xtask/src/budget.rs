//! The committed suppression budget for `lint:allow` escapes.
//!
//! `lint-budget.toml` at the workspace root pins the number of escape
//! comments the workspace may carry, per rule and in total. The lint pass
//! counts live allows (stale ones are already errors via `stale-allow`) and
//! fails when any count exceeds its budget line — so adding an escape is a
//! reviewed diff to the budget file, not a silent drift. Shrinking the
//! budget after removing escapes is encouraged and always passes.
//!
//! The format is a deliberately tiny TOML subset: `key = integer` lines,
//! `#` comments, blank lines. `total` caps the workspace-wide count; any
//! other key must be a known rule id.

use crate::rules::{rule_info, Diagnostic};
use std::collections::BTreeMap;

/// Parsed budget: per-rule caps plus the workspace-wide `total` cap.
#[derive(Debug, Default)]
pub struct Budget {
    /// Per-rule maximum allow counts.
    pub per_rule: BTreeMap<String, usize>,
    /// Workspace-wide maximum (`total = N`); `None` leaves it uncapped.
    pub total: Option<usize>,
}

/// Parses `lint-budget.toml` text.
///
/// # Errors
///
/// Returns a message naming the offending line for malformed entries or
/// unknown rule ids (a typoed rule name would otherwise silently uncap).
pub fn parse(text: &str) -> Result<Budget, String> {
    let mut budget = Budget::default();
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("lint-budget.toml:{}: expected `key = N`", i + 1))?;
        let key = key.trim();
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("lint-budget.toml:{}: `{key}` needs an integer", i + 1))?;
        if key == "total" {
            budget.total = Some(value);
        } else if rule_info(key).is_some() {
            budget.per_rule.insert(key.to_string(), value);
        } else {
            return Err(format!(
                "lint-budget.toml:{}: unknown rule id `{key}`",
                i + 1
            ));
        }
    }
    Ok(budget)
}

/// Checks live allow counts against the budget, returning one synthetic
/// `suppression-budget` diagnostic per exceeded cap. Rules without a budget
/// line default to zero allowed escapes.
#[must_use]
pub fn check(budget: &Budget, allow_counts: &BTreeMap<String, usize>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (rule, &n) in allow_counts {
        let cap = budget.per_rule.get(rule).copied().unwrap_or(0);
        if n > cap {
            out.push(Diagnostic {
                path: "lint-budget.toml".to_string(),
                line: 1,
                rule: "suppression-budget",
                message: format!(
                    "{n} lint:allow({rule}) escape(s) in the workspace, budget is {cap}; \
                     remove escapes or grow the budget in a reviewed diff"
                ),
            });
        }
    }
    let total: usize = allow_counts.values().sum();
    if let Some(cap) = budget.total {
        if total > cap {
            out.push(Diagnostic {
                path: "lint-budget.toml".to_string(),
                line: 1,
                rule: "suppression-budget",
                message: format!(
                    "{total} lint:allow escapes in the workspace, total budget is {cap}"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_caps_comments_and_total() {
        let b = parse(
            "# escapes as of PR 6\nfloat-eq = 2\nno-panic = 2 # matrix, sweep\n\ntotal = 4\n",
        )
        .unwrap();
        assert_eq!(b.per_rule.get("float-eq"), Some(&2));
        assert_eq!(b.per_rule.get("no-panic"), Some(&2));
        assert_eq!(b.total, Some(4));
    }

    #[test]
    fn rejects_unknown_rules_and_malformed_lines() {
        assert!(parse("flaot-eq = 2\n")
            .unwrap_err()
            .contains("unknown rule id"));
        assert!(parse("float-eq\n").unwrap_err().contains("expected"));
        assert!(parse("float-eq = many\n").unwrap_err().contains("integer"));
    }

    #[test]
    fn unbudgeted_rules_default_to_zero() {
        let b = parse("total = 10\n").unwrap();
        let counts = BTreeMap::from([("seeded-rng".to_string(), 1)]);
        let d = check(&b, &counts);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "suppression-budget");
        assert!(d[0].message.contains("budget is 0"), "{}", d[0].message);
    }

    #[test]
    fn within_budget_is_clean_and_overage_fails_both_caps() {
        let b = parse("float-eq = 1\ntotal = 1\n").unwrap();
        let ok = BTreeMap::from([("float-eq".to_string(), 1)]);
        assert!(check(&b, &ok).is_empty());
        let over = BTreeMap::from([("float-eq".to_string(), 2)]);
        let d = check(&b, &over);
        assert_eq!(d.len(), 2, "per-rule and total caps both fire: {d:?}");
    }
}
