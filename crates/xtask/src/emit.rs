//! Machine-readable renderings of lint results.
//!
//! Two formats, both hand-rolled on top of `efficsense_obs::json::escape`
//! (std-only, no serde):
//!
//! - [`render_json`] — a compact native schema for scripting: diagnostics,
//!   per-rule `lint:allow` counts, and the totals CI trend lines key off;
//! - [`render_sarif`] — minimal SARIF 2.1.0 for code-scanning UIs: one run,
//!   one `tool.driver` carrying the rule catalogue, one `result` per
//!   diagnostic with a physical location.
//!
//! Both emitters are exercised by round-trip fixture tests that re-parse the
//! output with the workspace JSON parser, so the escaping rules stay honest.

use crate::rules::{Diagnostic, RULES};
use crate::LintReport;
use efficsense_obs::json::escape;
use std::fmt::Write as _;

/// Renders a [`LintReport`] as a single-document JSON object.
#[must_use]
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\"tool\":\"xtask-lint\",\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            escape(&d.path),
            d.line,
            escape(d.rule),
            escape(&d.message)
        );
    }
    out.push_str("],\"allows\":{");
    for (i, (rule, n)) in report.allow_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape(rule), n);
    }
    let total: usize = report.allow_counts.values().sum();
    let _ = write!(
        out,
        "}},\"total_allows\":{},\"total_diagnostics\":{}}}",
        total,
        report.diagnostics.len()
    );
    out
}

/// Renders diagnostics as a minimal SARIF 2.1.0 log.
#[must_use]
pub fn render_sarif(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"xtask-lint\",\"informationUri\":\
         \"https://example.invalid/efficsense/xtask\",\"rules\":[",
    );
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            escape(r.id),
            escape(r.summary)
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rule_index = RULES.iter().position(|r| r.id == d.rule).unwrap_or(0);
        let _ = write!(
            out,
            "{{\"ruleId\":\"{}\",\"ruleIndex\":{},\"level\":\"error\",\
             \"message\":{{\"text\":\"{}\"}},\"locations\":[{{\
             \"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{}}}}}}}]}}",
            escape(d.rule),
            rule_index,
            escape(&d.message),
            escape(&d.path),
            d.line
        );
    }
    out.push_str("]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_obs::json::Json;
    use std::collections::BTreeMap;

    fn sample_report() -> LintReport {
        LintReport {
            diagnostics: vec![Diagnostic {
                path: "crates/dsp/src/fft.rs".to_string(),
                line: 42,
                rule: "float-eq",
                message: "exact float comparison with \"quotes\" and \\ backslash".to_string(),
            }],
            allow_counts: BTreeMap::from([("float-eq".to_string(), 2)]),
        }
    }

    #[test]
    fn json_document_parses_back() {
        let doc = render_json(&sample_report());
        let json = Json::parse(&doc).expect("valid JSON");
        let diags = json.get("diagnostics").and_then(Json::as_arr).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0].get("path").and_then(Json::as_str),
            Some("crates/dsp/src/fft.rs")
        );
        assert_eq!(diags[0].get("line").and_then(Json::as_u64), Some(42));
        assert_eq!(json.get("total_allows").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn sarif_document_parses_back_with_catalogue() {
        let report = sample_report();
        let doc = render_sarif(&report.diagnostics);
        let json = Json::parse(&doc).expect("valid SARIF JSON");
        assert_eq!(json.get("version").and_then(Json::as_str), Some("2.1.0"));
        let runs = json.get("runs").and_then(Json::as_arr).unwrap();
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(rules.len(), RULES.len());
        let results = runs[0].get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(
            results[0].get("ruleId").and_then(Json::as_str),
            Some("float-eq")
        );
    }

    #[test]
    fn escaping_survives_hostile_messages() {
        let mut report = sample_report();
        report.diagnostics[0].message = "newline\n tab\t quote\" backslash\\ done".to_string();
        for doc in [render_json(&report), render_sarif(&report.diagnostics)] {
            let json = Json::parse(&doc).expect("hostile message must still parse");
            let text = doc.contains("newline\\n");
            assert!(text, "newline must be escaped: {doc}");
            drop(json);
        }
    }
}
