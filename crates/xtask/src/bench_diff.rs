//! `cargo xtask bench-diff` — perf-trend gate over `BENCH_sweep.json`.
//!
//! Compares a freshly generated sweep benchmark summary against a baseline
//! (typically the committed `BENCH_sweep.json`) and fails when uncached
//! throughput regressed beyond a tolerance. The gate is one-sided: getting
//! *faster* never fails, and the warm (cache-served) rate is reported but
//! never gated — it is dominated by I/O jitter at these scales.
//!
//! Both files are parsed with the zero-dependency JSON reader from
//! [`efficsense_obs::json`], so the gate builds in the same offline
//! environment as everything else.

use efficsense_obs::json::Json;

/// The metric the gate enforces.
pub const GATED_METRIC: &str = "uncached_points_per_s";

/// Default fractional regression tolerance (30%): CI shares cores with
/// sibling jobs, so small swings are noise, but a 2x slowdown is a bug.
pub const DEFAULT_TOLERANCE: f64 = 0.3;

/// Outcome of comparing one metric across the two summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    /// Metric key inside the benchmark JSON object.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `current / baseline` (baseline clamped away from zero).
    pub ratio: f64,
}

impl MetricDiff {
    /// `true` when `current` fell below `baseline * (1 - tolerance)`.
    #[must_use]
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.current < self.baseline * (1.0 - tolerance)
    }
}

/// Full comparison result, ready for printing and gating.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// The gated throughput metric.
    pub gated: MetricDiff,
    /// Informational metrics (reported, never gated).
    pub informational: Vec<MetricDiff>,
}

impl BenchDiff {
    /// `true` when the gated metric regressed beyond `tolerance`.
    #[must_use]
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.gated.regressed(tolerance)
    }

    /// `true` when the gated metric sits below an absolute floor.
    ///
    /// The relative gate in [`BenchDiff::regressed`] only catches *drift*
    /// between two summaries; once a baseline is refreshed after a large
    /// speedup, the floor pins the minimum acceptable throughput so the
    /// win cannot silently erode across a series of within-tolerance dips.
    #[must_use]
    pub fn below_floor(&self, floor: f64) -> bool {
        self.gated.current < floor
    }
}

/// Parses one benchmark summary and pulls a named float out of the top-level
/// object.
fn metric(doc: &Json, name: &str) -> Result<f64, String> {
    doc.get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("benchmark summary has no numeric `{name}` field"))
}

/// Compares two benchmark summary documents.
///
/// # Errors
///
/// Returns a message when either document is not valid JSON or lacks the
/// gated metric.
pub fn compare(baseline: &str, current: &str) -> Result<BenchDiff, String> {
    let base = Json::parse(baseline).ok_or("baseline: not valid JSON")?;
    let cur = Json::parse(current).ok_or("current: not valid JSON")?;
    let diff_of = |name: &str| -> Result<MetricDiff, String> {
        let b = metric(&base, name)?;
        let c = metric(&cur, name)?;
        Ok(MetricDiff {
            name: name.to_string(),
            baseline: b,
            current: c,
            ratio: c / b.max(f64::MIN_POSITIVE),
        })
    };
    let gated = diff_of(GATED_METRIC)?;
    // Informational metrics are best-effort: older baselines may predate them.
    let informational = ["warm_points_per_s", "cold_speedup", "warm_speedup"]
        .iter()
        .filter_map(|name| diff_of(name).ok())
        .collect();
    Ok(BenchDiff {
        gated,
        informational,
    })
}

/// Renders one comparison line: `name: baseline -> current (xN.NN)`.
#[must_use]
pub fn render_line(d: &MetricDiff) -> String {
    format!(
        "  {:<24} {:>12.4} -> {:>12.4}  (x{:.3})",
        d.name, d.baseline, d.current, d.ratio
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(uncached: f64, warm: f64) -> String {
        format!(
            "{{\"scale\":\"reduced\",\"uncached_points_per_s\":{uncached},\
             \"warm_points_per_s\":{warm},\"cold_speedup\":1.5,\"warm_speedup\":100.0}}"
        )
    }

    #[test]
    fn identical_summaries_pass() {
        let s = summary(2.7, 40_000.0);
        let diff = compare(&s, &s).expect("valid summaries compare");
        assert!(!diff.regressed(DEFAULT_TOLERANCE));
        assert!((diff.gated.ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_dip_within_tolerance_passes() {
        let diff = compare(&summary(2.7, 40_000.0), &summary(2.0, 40_000.0))
            .expect("valid summaries compare");
        // 2.0 / 2.7 ≈ 0.74, inside the 30% band.
        assert!(!diff.regressed(DEFAULT_TOLERANCE));
    }

    #[test]
    fn large_regression_fails_the_gate() {
        let diff = compare(&summary(2.7, 40_000.0), &summary(1.0, 40_000.0))
            .expect("valid summaries compare");
        assert!(diff.regressed(DEFAULT_TOLERANCE));
    }

    #[test]
    fn speedups_never_fail_the_gate() {
        let diff =
            compare(&summary(2.7, 40_000.0), &summary(27.0, 1.0)).expect("valid summaries compare");
        assert!(!diff.regressed(DEFAULT_TOLERANCE));
        // Warm rate collapsed but it is informational only.
        let warm = diff
            .informational
            .iter()
            .find(|d| d.name == "warm_points_per_s")
            .expect("warm metric present");
        assert!(warm.ratio < 0.001);
    }

    #[test]
    fn tolerance_boundary_is_one_sided() {
        // Exactly at baseline * (1 - tolerance): strict `<` means not regressed.
        let diff =
            compare(&summary(10.0, 1.0), &summary(7.0, 1.0)).expect("valid summaries compare");
        assert!(!diff.regressed(DEFAULT_TOLERANCE));
        let diff =
            compare(&summary(10.0, 1.0), &summary(6.9, 1.0)).expect("valid summaries compare");
        assert!(diff.regressed(DEFAULT_TOLERANCE));
    }

    #[test]
    fn floor_gates_on_the_current_value_only() {
        // Current 13.0 ≥ floor 12.11: passes even though the baseline is higher.
        let diff =
            compare(&summary(34.5, 1.0), &summary(13.0, 1.0)).expect("valid summaries compare");
        assert!(!diff.below_floor(12.11));
        // Current below the floor fails regardless of the relative tolerance.
        let diff =
            compare(&summary(12.2, 1.0), &summary(12.0, 1.0)).expect("valid summaries compare");
        assert!(!diff.regressed(DEFAULT_TOLERANCE));
        assert!(diff.below_floor(12.11));
    }

    #[test]
    fn floor_boundary_is_strictly_below() {
        let diff =
            compare(&summary(12.11, 1.0), &summary(12.11, 1.0)).expect("valid summaries compare");
        assert!(!diff.below_floor(12.11));
    }

    #[test]
    fn missing_gated_metric_is_an_error() {
        let err = compare("{\"scale\":\"reduced\"}", &summary(2.7, 1.0))
            .expect_err("missing metric must error");
        assert!(err.contains(GATED_METRIC));
    }

    #[test]
    fn invalid_json_is_an_error() {
        let err = compare("not json", &summary(2.7, 1.0)).expect_err("garbage must error");
        assert!(err.starts_with("baseline:"));
    }

    #[test]
    fn missing_informational_metrics_are_tolerated() {
        let bare = "{\"uncached_points_per_s\":2.7}";
        let diff = compare(bare, bare).expect("gated metric alone is enough");
        assert!(diff.informational.is_empty());
        assert!(!diff.regressed(DEFAULT_TOLERANCE));
    }
}
