//! The six domain-aware lint rules.
//!
//! | rule id       | invariant                                                      |
//! |---------------|----------------------------------------------------------------|
//! | `float-eq`    | no `==`/`!=` on floating-point operands                        |
//! | `no-panic`    | no `panic!`/`.unwrap()`/`.expect(` in gated library code       |
//! | `unit-newtype`| power/energy/capacitance returns use `units` newtypes          |
//! | `must-use`    | scalar power/energy/metric returns carry `#[must_use]`         |
//! | `seeded-rng`  | no ambient-entropy RNG outside the bench crate                 |
//! | `finite-guard`| hot numerical kernels carry `debug_assert!(..is_finite..)`     |
//!
//! Every rule is line-textual over the preprocessed source (comments and
//! string literals blanked), which keeps the checker dependency-free and
//! fast; the price is that rules are heuristic, so each supports a
//! `// lint:allow(rule-id)` escape on the same or preceding line.

use crate::source::SourceFile;

/// A single finding, printed as `file:line: rule-id: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Crates whose library code must not panic (simulation inner loops).
const NO_PANIC_CRATES: [&str; 6] = [
    "crates/core/src/",
    "crates/power/src/",
    "crates/cs/src/",
    "crates/dsp/src/",
    "crates/faults/src/",
    "crates/obs/src/",
];

/// Numerical kernels that must guard stage boundaries against non-finite
/// values.
const FINITE_GUARD_FILES: [&str; 4] = [
    "crates/cs/src/linalg.rs",
    "crates/cs/src/recon.rs",
    "crates/dsp/src/fft.rs",
    "crates/core/src/simulate.rs",
];

/// Runs every rule against one file.
pub fn check_file(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    float_eq(f, &mut out);
    no_panic(f, &mut out);
    unit_newtype(f, &mut out);
    must_use(f, &mut out);
    seeded_rng(f, &mut out);
    finite_guard(f, &mut out);
    out.retain(|d| !f.allowed(d.rule, d.line));
    out
}

fn push(out: &mut Vec<Diagnostic>, f: &SourceFile, line: usize, rule: &'static str, msg: String) {
    out.push(Diagnostic {
        path: f.path.clone(),
        line,
        rule,
        message: msg,
    });
}

// ---------------------------------------------------------------------------
// float-eq
// ---------------------------------------------------------------------------

/// Flags `==`/`!=` where either operand looks floating-point: a float
/// literal (`0.0`, `1e-6`), an `f64`/`f32` cast, or an `f64::` constant.
/// Exact comparison is almost always wrong for computed floats; route
/// through `efficsense_dsp::approx::{approx_eq, total_eq, is_zero}`.
fn float_eq(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, line) in f.clean.iter().enumerate() {
        for pos in eq_operator_positions(line) {
            let (lhs, rhs) = operand_windows(line, pos);
            if looks_float(lhs) || looks_float(rhs) {
                push(
                    out,
                    f,
                    i + 1,
                    "float-eq",
                    "exact float comparison; use approx_eq/total_eq/is_zero from \
                     efficsense_dsp::approx"
                        .to_string(),
                );
                break; // one diagnostic per line is enough
            }
        }
    }
}

/// Byte offsets of bare `==` / `!=` operators (not `<=`, `>=`, `=>`, `===`).
fn eq_operator_positions(line: &str) -> Vec<usize> {
    let b = line.as_bytes();
    let mut v = Vec::new();
    let mut i = 0;
    while i + 1 < b.len() {
        let two = &b[i..i + 2];
        if two == b"==" || two == b"!=" {
            let before_ok = i == 0 || !matches!(b[i - 1], b'=' | b'<' | b'>' | b'!');
            let after_ok = i + 2 >= b.len() || b[i + 2] != b'=';
            if before_ok && after_ok {
                v.push(i);
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    v
}

/// Text windows left and right of the operator, clipped at expression
/// boundaries that cannot be part of a simple operand.
fn operand_windows(line: &str, op_pos: usize) -> (&str, &str) {
    let left_all = &line[..op_pos];
    let right_all = &line[op_pos + 2..];
    let lstart = left_all
        .rfind(['(', ',', ';', '{', '&', '|'])
        .map_or(0, |p| p + 1);
    let rend = right_all
        .find([',', ';', '{', '&', '|', ')'])
        .unwrap_or(right_all.len());
    (&left_all[lstart..], &right_all[..rend])
}

/// Identifier suffixes that by workspace convention denote f64 quantities
/// (watts, joules, farads, hertz, decibels, volts-rms) — comparing them
/// exactly is as wrong as comparing literals.
const FLOAT_SUFFIXES: [&str; 7] = ["_w", "_j", "_f", "_hz", "_db", "_vrms", "_percent"];

/// Heuristic: does the snippet contain a float literal, a float type token,
/// or an identifier with a unit suffix?
fn looks_float(s: &str) -> bool {
    if s.contains("f64") || s.contains("f32") {
        return true;
    }
    for word in s.split(|c: char| !(c.is_alphanumeric() || c == '_')) {
        if FLOAT_SUFFIXES
            .iter()
            .any(|suf| word.ends_with(suf) && word.len() > suf.len())
        {
            return true;
        }
    }
    let b = s.as_bytes();
    for i in 0..b.len() {
        if !b[i].is_ascii_digit() {
            continue;
        }
        // digit '.' digit → decimal literal (excludes `0..10` ranges).
        if i + 2 < b.len() && b[i + 1] == b'.' && b[i + 2].is_ascii_digit() {
            return true;
        }
        // digit ('e'|'E') [+-] digit → exponent literal. Requires the next
        // char after e/E to be a sign or digit so identifiers don't match.
        if i + 2 < b.len() && (b[i + 1] == b'e' || b[i + 1] == b'E') {
            let t = b[i + 2];
            if t.is_ascii_digit()
                || ((t == b'+' || t == b'-') && i + 3 < b.len() && b[i + 3].is_ascii_digit())
            {
                // Exclude hex literals like 0x1e3 by requiring no `x` before.
                if !s[..i].ends_with('x') {
                    return true;
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// no-panic
// ---------------------------------------------------------------------------

/// Flags `panic!`, `.unwrap()`, `.expect(`, `todo!` and `unimplemented!` in
/// the non-test library code of the simulation crates. These run inside
/// sweep inner loops; a bad design point must surface as an `Err`, not
/// abort a multi-hour pathfinding run.
fn no_panic(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !NO_PANIC_CRATES.iter().any(|p| f.path.starts_with(p)) {
        return;
    }
    const PATTERNS: [(&str, &str); 5] = [
        ("panic!", "explicit panic"),
        (".unwrap()", "Option/Result unwrap"),
        (".expect(", "Option/Result expect"),
        ("todo!", "todo! placeholder"),
        ("unimplemented!", "unimplemented! placeholder"),
    ];
    for (i, line) in f.clean.iter().enumerate() {
        if f.in_test[i] {
            continue;
        }
        for (pat, what) in PATTERNS {
            if line.contains(pat) {
                push(
                    out,
                    f,
                    i + 1,
                    "no-panic",
                    format!("{what} in simulation library code; return Result or restructure"),
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// pub fn signature scanning (shared by unit-newtype and must-use)
// ---------------------------------------------------------------------------

/// A public function signature found in the cleaned source.
struct PubFn {
    /// 1-based line of the `fn` keyword.
    line: usize,
    name: String,
    /// Signature text between the closing paren of the params and the body.
    ret: String,
}

fn pub_fns(f: &SourceFile) -> Vec<PubFn> {
    let text = f.clean.join("\n");
    let b: Vec<char> = text.chars().collect();
    let mut fns = Vec::new();
    let mut search = 0usize;
    loop {
        let plain = text[search..].find("pub fn ");
        let konst = text[search..].find("pub const fn ");
        let (rel, skip) = match (plain, konst) {
            (Some(a), Some(c)) if c < a => (c, "pub const fn ".len()),
            (Some(a), _) => (a, "pub fn ".len()),
            (None, Some(c)) => (c, "pub const fn ".len()),
            (None, None) => break,
        };
        let at = search + rel;
        let name_start = at + skip;
        let mut j = name_start;
        while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        let name: String = b[name_start..j].iter().collect();
        // Find the param list and match parens.
        while j < b.len() && b[j] != '(' {
            j += 1;
        }
        let mut depth = 0usize;
        while j < b.len() {
            match b[j] {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let ret_start = (j + 1).min(b.len());
        let mut k = ret_start;
        while k < b.len() && b[k] != '{' && b[k] != ';' {
            k += 1;
        }
        let ret: String = b[ret_start..k].iter().collect();
        let line = text[..at].matches('\n').count() + 1;
        if !name.is_empty() {
            fns.push(PubFn {
                line,
                name,
                ret: ret.trim().to_string(),
            });
        }
        search = k.max(at + 1);
    }
    fns
}

/// Does the raw source carry `#[must_use]` in the attribute block directly
/// above `line` (1-based)?
fn has_must_use_above(f: &SourceFile, line: usize) -> bool {
    // The attribute may also sit on the `pub fn` line itself in pathological
    // formatting; check it first.
    if f.raw
        .get(line - 1)
        .is_some_and(|l| l.contains("#[must_use]"))
    {
        return true;
    }
    let mut i = line - 1; // index of the fn line in 0-based raw
    while i > 0 {
        i -= 1;
        let t = f.raw[i].trim();
        if t.contains("#[must_use]") {
            return true;
        }
        // Keep walking through other attributes and doc comments.
        if t.starts_with("#[") || t.starts_with("///") || t.starts_with("//") || t.is_empty() {
            continue;
        }
        break;
    }
    false
}

// ---------------------------------------------------------------------------
// unit-newtype
// ---------------------------------------------------------------------------

/// In `efficsense-power`, public functions whose names promise a power,
/// energy, charge or capacitance must return the corresponding `units`
/// newtype, not a bare `f64` — mixing up a watt and a farad type-checks
/// otherwise.
fn unit_newtype(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.path.starts_with("crates/power/src/") {
        return;
    }
    for pf in pub_fns(f) {
        if !pf.ret.contains("-> f64") {
            continue;
        }
        if f.in_test[pf.line - 1] {
            continue;
        }
        let n = pf.name.as_str();
        let unit_like = n.ends_with("_w")
            || n.ends_with("_j")
            || n.ends_with("_f")
            || n.contains("power")
            || n.contains("energy")
            || n.contains("capacitance")
            || n.contains("charge");
        if unit_like {
            push(
                out,
                f,
                pf.line,
                "unit-newtype",
                format!(
                    "`{n}` returns a raw f64 for a dimensioned quantity; return a units \
                     newtype (Watts/Joules/Farads)"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// must-use
// ---------------------------------------------------------------------------

/// Scalar power/energy/metric computations whose result is silently dropped
/// are always bugs; require `#[must_use]` on them. Newtype returns are
/// covered by the `#[must_use]` on the unit structs themselves.
fn must_use(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let in_scope = f.path.starts_with("crates/power/src/") || f.path == "crates/dsp/src/metrics.rs";
    if !in_scope {
        return;
    }
    for pf in pub_fns(f) {
        if !pf.ret.contains("-> f64") {
            continue;
        }
        if f.in_test[pf.line - 1] {
            continue;
        }
        let n = pf.name.as_str();
        let metric_like = n.ends_with("_db")
            || n.ends_with("_w")
            || n.ends_with("_j")
            || n.ends_with("_percent")
            || n.contains("power")
            || n.contains("energy")
            || n.contains("sndr")
            || n.contains("snr")
            || n.contains("enob")
            || n.contains("thd")
            || n.contains("nmse")
            || n.contains("rmse")
            || n.contains("nef");
        if metric_like && !has_must_use_above(f, pf.line) {
            push(
                out,
                f,
                pf.line,
                "must-use",
                format!("`{n}` computes a power/energy/quality figure; mark it #[must_use]"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// seeded-rng
// ---------------------------------------------------------------------------

/// All stochastic behaviour must be reproducible from explicit seeds:
/// Monte-Carlo mismatch draws, sensing matrices and noise streams are part
/// of the experiment record. Ambient-entropy constructors are only
/// acceptable in the bench crate.
fn seeded_rng(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.path.starts_with("crates/bench/") {
        return;
    }
    const PATTERNS: [&str; 6] = [
        "thread_rng",
        "from_entropy",
        "rand::random",
        "OsRng",
        "getrandom",
        "from_os_rng",
    ];
    for (i, line) in f.clean.iter().enumerate() {
        for pat in PATTERNS {
            if line.contains(pat) {
                push(
                    out,
                    f,
                    i + 1,
                    "seeded-rng",
                    format!("`{pat}` draws ambient entropy; construct Rng64 from an explicit seed"),
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// finite-guard
// ---------------------------------------------------------------------------

/// The hot numerical kernels must assert finiteness at stage boundaries in
/// debug builds — a NaN born in a Cholesky solve otherwise propagates
/// silently into every downstream metric. The rule is satisfied by any
/// `debug_assert…is_finite` combination or a `debug_assert_all_finite` call.
fn finite_guard(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !FINITE_GUARD_FILES.contains(&f.path.as_str()) {
        return;
    }
    if f.allowed_anywhere("finite-guard") {
        return;
    }
    // The assertion may be formatted across lines, so test containment over
    // the whole file rather than per line.
    let has_all_finite = f
        .clean
        .iter()
        .any(|l| l.contains("debug_assert_all_finite"));
    let has_guard = has_all_finite
        || (f.clean.iter().any(|l| l.contains("debug_assert"))
            && f.clean.iter().any(|l| l.contains("is_finite")));
    if !has_guard {
        push(
            out,
            f,
            1,
            "finite-guard",
            "hot numerical kernel lacks debug_assert finiteness guards at stage boundaries"
                .to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(&SourceFile::parse(path, src))
    }

    #[test]
    fn float_eq_catches_literal_comparison() {
        let d = lint("crates/ml/src/x.rs", "fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "float-eq");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn float_eq_catches_unit_suffixed_identifiers() {
        let src = "fn same(a: &P, b: &P) -> bool { a.power_w == b.power_w }\n";
        let d = lint("crates/ml/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "float-eq");
    }

    #[test]
    fn float_eq_ignores_integer_and_compound_ops() {
        let src = "fn f(x: usize) -> bool { x == 10 && x != 3 && x <= 4 }\n";
        assert!(lint("crates/ml/src/x.rs", src).is_empty());
    }

    #[test]
    fn no_panic_only_in_gated_crates() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint("crates/dsp/src/x.rs", src).len(), 1);
        assert!(lint("crates/ml/src/x.rs", src).is_empty());
    }

    #[test]
    fn no_panic_covers_the_evaluation_cache_modules() {
        // The sweep-result cache and the CS artifact memo run inside sweep
        // inner loops; both must stay under the no-panic rule even if the
        // crate prefix list is ever rewritten as an explicit file list.
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        for path in ["crates/core/src/cache.rs", "crates/cs/src/memo.rs"] {
            let d = lint(path, src);
            assert!(
                d.iter().any(|d| d.rule == "no-panic"),
                "{path} must be no-panic gated"
            );
        }
    }

    #[test]
    fn no_panic_and_seeded_rng_cover_the_faults_crate() {
        let panicky = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint("crates/faults/src/plan.rs", panicky).len(), 1);
        let ambient = "fn f() { let mut rng = thread_rng(); }\n";
        assert!(lint("crates/faults/src/link.rs", ambient)
            .iter()
            .any(|d| d.rule == "seeded-rng"));
    }

    #[test]
    fn no_panic_covers_the_telemetry_crate() {
        // Spans and counters run inside the same inner loops they observe;
        // a panicking instrument would abort the sweep it was watching.
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let d = lint("crates/obs/src/registry.rs", src);
        assert!(
            d.iter().any(|d| d.rule == "no-panic"),
            "crates/obs must be no-panic gated"
        );
    }

    #[test]
    fn no_panic_exempts_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(lint("crates/dsp/src/x.rs", src).is_empty());
    }

    #[test]
    fn pub_fn_scanner_handles_multiline_signatures() {
        let src = "pub fn walden_fom_j_per_step(\n    power_w: f64,\n    enob: f64,\n) -> f64 {\n    0.0\n}\n";
        let f = SourceFile::parse("crates/power/src/fom.rs", src);
        let fns = pub_fns(&f);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "walden_fom_j_per_step");
        assert!(fns[0].ret.contains("-> f64"));
    }

    #[test]
    fn unit_newtype_flags_raw_f64_power_return() {
        let src = "pub fn power_w(&self) -> f64 { 1.0 }\n";
        let d = lint("crates/power/src/models.rs", src);
        assert!(d.iter().any(|d| d.rule == "unit-newtype"), "{d:?}");
    }

    #[test]
    fn must_use_accepts_annotated_fn() {
        let src = "#[must_use]\npub fn sndr_db(x: f64) -> f64 { x }\n";
        let d = lint("crates/dsp/src/metrics.rs", src);
        assert!(!d.iter().any(|d| d.rule == "must-use"), "{d:?}");
    }

    #[test]
    fn seeded_rng_flags_ambient_sources_outside_bench() {
        let src = "fn f() { let mut rng = thread_rng(); }\n";
        assert_eq!(lint("crates/signals/src/x.rs", src).len(), 1);
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn finite_guard_requires_guard_in_hot_kernels() {
        let bare = "pub fn omp() {}\n";
        let d = lint("crates/cs/src/recon.rs", bare);
        assert!(d.iter().any(|d| d.rule == "finite-guard"));
        let guarded = "pub fn omp(y: &[f64]) { debug_assert_all_finite(y, \"omp\"); }\n";
        assert!(lint("crates/cs/src/recon.rs", guarded).is_empty());
        // Not a hot kernel → no requirement.
        assert!(lint("crates/cs/src/matrix.rs", bare).is_empty());
    }

    #[test]
    fn allow_escape_suppresses_same_and_next_line() {
        let same = "fn f(v: f64) -> bool { v == 0.0 } // lint:allow(float-eq)\n";
        assert!(lint("crates/ml/src/x.rs", same).is_empty());
        let preceding =
            "// lint:allow(float-eq) — definitional zero check\nfn f(v: f64) -> bool { v == 0.0 }\n";
        assert!(lint("crates/ml/src/x.rs", preceding).is_empty());
        let wrong_rule = "fn f(v: f64) -> bool { v == 0.0 } // lint:allow(no-panic)\n";
        assert_eq!(lint("crates/ml/src/x.rs", wrong_rule).len(), 1);
    }
}
