//! The domain-aware lint rule pack, matched over the token stream.
//!
//! | rule id          | invariant                                                        |
//! |------------------|------------------------------------------------------------------|
//! | `float-eq`       | no `==`/`!=` on floating-point operands                          |
//! | `no-panic`       | no `panic!`/`.unwrap()`/`.expect(` in gated library code         |
//! | `unit-newtype`   | power/energy/capacitance returns use `units` newtypes            |
//! | `must-use`       | scalar power/energy/metric returns carry `#[must_use]`           |
//! | `seeded-rng`     | no ambient-entropy RNG outside the bench crate                   |
//! | `finite-guard`   | hot numerical kernels carry `debug_assert!(..is_finite..)`       |
//! | `ambient-time`   | no `Instant::now`/`SystemTime` outside the pluggable obs clock   |
//! | `unordered-iter` | no unsorted iteration over `HashMap`/`HashSet` bindings          |
//! | `atomic-ordering`| `Ordering::Relaxed` on non-counter atomics needs `// relaxed:`   |
//! | `unsafe-audit`   | every `unsafe` carries a `// SAFETY:` comment                    |
//! | `static-mut`     | no `static mut` items, ever                                      |
//! | `cast-truncation`| no narrowing `as` casts inside the hot numerical kernels         |
//! | `stale-allow`    | every `lint:allow(...)` escape must suppress something           |
//!
//! Rules match syntax over the [`crate::tokens`] stream (comments and
//! literals blanked first), which keeps the checker dependency-free while
//! seeing real code shapes — `unsafe_code` in an attribute is one identifier,
//! `0..10` is a range, a `lint:allow` inside a string is inert. Rules remain
//! heuristic (no type inference), so each supports a `lint:allow(rule-id)`
//! escape on the same or preceding line; stale escapes are themselves
//! diagnosed, and the workspace total is capped by `lint-budget.toml`.

use crate::source::SourceFile;
use crate::tokens::{TokenKind, TokenStream};

/// A single finding, printed as `file:line: rule-id: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Catalogue entry for one rule (consumed by the SARIF emitter and the
/// stale-allow filter).
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule identifier.
    pub id: &'static str,
    /// One-line description for reports.
    pub summary: &'static str,
    /// Whole-file rules accept a `lint:allow` anywhere in the file.
    pub whole_file: bool,
}

/// The full rule catalogue, including synthetic rules (`stale-allow` fires
/// from the suppression pass; `suppression-budget` from the budget check).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "float-eq",
        summary: "exact ==/!= on floating-point operands",
        whole_file: false,
    },
    RuleInfo {
        id: "no-panic",
        summary: "panicking construct in simulation library code",
        whole_file: false,
    },
    RuleInfo {
        id: "unit-newtype",
        summary: "dimensioned quantity returned as bare f64",
        whole_file: false,
    },
    RuleInfo {
        id: "must-use",
        summary: "power/energy/metric computation without #[must_use]",
        whole_file: false,
    },
    RuleInfo {
        id: "seeded-rng",
        summary: "ambient-entropy RNG outside the bench crate",
        whole_file: false,
    },
    RuleInfo {
        id: "finite-guard",
        summary: "hot numerical kernel without finiteness guards",
        whole_file: true,
    },
    RuleInfo {
        id: "ambient-time",
        summary: "ambient clock read outside the pluggable obs clock",
        whole_file: false,
    },
    RuleInfo {
        id: "unordered-iter",
        summary: "iteration over HashMap/HashSet without a sort",
        whole_file: false,
    },
    RuleInfo {
        id: "atomic-ordering",
        summary: "Ordering::Relaxed on a non-counter atomic without justification",
        whole_file: false,
    },
    RuleInfo {
        id: "unsafe-audit",
        summary: "unsafe without a SAFETY comment",
        whole_file: false,
    },
    RuleInfo {
        id: "static-mut",
        summary: "static mut item",
        whole_file: false,
    },
    RuleInfo {
        id: "cast-truncation",
        summary: "narrowing `as` cast inside a hot numerical kernel",
        whole_file: false,
    },
    RuleInfo {
        id: "stale-allow",
        summary: "lint:allow escape that suppresses nothing",
        whole_file: false,
    },
    RuleInfo {
        id: "suppression-budget",
        summary: "lint:allow escape count exceeds the committed budget",
        whole_file: false,
    },
];

/// Looks up a rule id in the catalogue.
#[must_use]
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// `true` for rules whose `lint:allow` may sit anywhere in the file.
#[must_use]
pub fn is_whole_file_rule(id: &str) -> bool {
    rule_info(id).is_some_and(|r| r.whole_file)
}

/// Crates whose library code must not panic (simulation inner loops).
const NO_PANIC_CRATES: [&str; 6] = [
    "crates/core/src/",
    "crates/power/src/",
    "crates/cs/src/",
    "crates/dsp/src/",
    "crates/faults/src/",
    "crates/obs/src/",
];

/// Library crates under the determinism rules (`ambient-time`,
/// `unordered-iter`, `atomic-ordering`). The bench crate is exempt: it
/// measures wall time and formats reports by design.
const LIB_CRATE_PREFIXES: [&str; 10] = [
    "crates/core/src/",
    "crates/power/src/",
    "crates/cs/src/",
    "crates/dsp/src/",
    "crates/faults/src/",
    "crates/obs/src/",
    "crates/signals/src/",
    "crates/blocks/src/",
    "crates/ml/src/",
    "crates/rng/src/",
];

/// The one file allowed to read ambient clocks: the pluggable clock
/// implementations themselves.
const AMBIENT_TIME_EXEMPT: [&str; 1] = ["crates/obs/src/clock.rs"];

/// Numerical kernels that must guard stage boundaries against non-finite
/// values, and in which bare narrowing casts are banned.
const FINITE_GUARD_FILES: [&str; 7] = [
    "crates/cs/src/linalg.rs",
    "crates/cs/src/recon.rs",
    "crates/cs/src/decode.rs",
    "crates/dsp/src/fft.rs",
    "crates/core/src/simulate.rs",
    "crates/core/src/stream.rs",
    "crates/core/src/prefix.rs",
];

/// Runs every rule against one file, applies `lint:allow` suppression, and
/// reports stale escapes.
pub fn check_file(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    float_eq(f, &mut out);
    no_panic(f, &mut out);
    unit_newtype(f, &mut out);
    must_use(f, &mut out);
    seeded_rng(f, &mut out);
    finite_guard(f, &mut out);
    ambient_time(f, &mut out);
    unordered_iter(f, &mut out);
    atomic_ordering(f, &mut out);
    unsafe_audit(f, &mut out);
    cast_truncation(f, &mut out);

    // Suppression pass: drop allowed diagnostics, tracking which escapes
    // actually earned their keep.
    let mut used = vec![false; f.allows.len()];
    out.retain(|d| {
        if is_whole_file_rule(d.rule) {
            if let Some(i) = f.allow_anywhere_index(d.rule) {
                used[i] = true;
                return false;
            }
        } else if let Some(i) = f.allow_index(d.rule, d.line) {
            used[i] = true;
            return false;
        }
        true
    });

    // stale-allow: an escape that suppressed nothing is itself a finding.
    // Unknown rule names are ignored (doc prose about the escape syntax uses
    // placeholders like `rule-id`); `stale-allow` cannot be suppressed.
    for (i, (line, rule)) in f.allows.iter().enumerate() {
        if !used[i] && rule_info(rule).is_some() {
            out.push(Diagnostic {
                path: f.path.clone(),
                line: *line,
                rule: "stale-allow",
                message: format!(
                    "lint:allow({rule}) suppresses no diagnostic; remove the stale escape"
                ),
            });
        }
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

fn push(out: &mut Vec<Diagnostic>, f: &SourceFile, line: usize, rule: &'static str, msg: String) {
    out.push(Diagnostic {
        path: f.path.clone(),
        line,
        rule,
        message: msg,
    });
}

fn in_lib_scope(f: &SourceFile) -> bool {
    LIB_CRATE_PREFIXES.iter().any(|p| f.path.starts_with(p))
}

// ---------------------------------------------------------------------------
// float-eq
// ---------------------------------------------------------------------------

/// Identifier suffixes that by workspace convention denote f64 quantities
/// (watts, joules, farads, hertz, decibels, volts-rms) — comparing them
/// exactly is as wrong as comparing literals.
const FLOAT_SUFFIXES: [&str; 7] = ["_w", "_j", "_f", "_hz", "_db", "_vrms", "_percent"];

/// Flags `==`/`!=` where either operand looks floating-point: a float
/// literal (`0.0`, `1e-6`), an `f64`/`f32` cast, or an identifier with a
/// unit suffix. Exact comparison is almost always wrong for computed floats;
/// route through `efficsense_dsp::approx::{approx_eq, total_eq, is_zero}`.
fn float_eq(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let ts = &f.tokens;
    let mut flagged_lines: Vec<usize> = Vec::new();
    for (i, t) in ts.tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        if flagged_lines.contains(&t.line) {
            continue; // one diagnostic per line is enough
        }
        let (lhs, rhs) = operand_windows(ts, i);
        if window_looks_float(ts, lhs) || window_looks_float(ts, rhs) {
            flagged_lines.push(t.line);
            push(
                out,
                f,
                t.line,
                "float-eq",
                "exact float comparison; use approx_eq/total_eq/is_zero from \
                 efficsense_dsp::approx"
                    .to_string(),
            );
        }
    }
}

/// Token index ranges left and right of the comparison at `op`, clipped at
/// punctuation that cannot be part of a simple operand and at the
/// operator's own line (operands spanning a line break are vanishingly rare,
/// and clipping keeps the window from bleeding into unrelated code).
fn operand_windows(
    ts: &TokenStream,
    op: usize,
) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
    const STOP: [&str; 9] = ["(", ")", ",", ";", "{", "}", "&", "|", "="];
    let line = ts.tokens[op].line;
    let stops = |t: &crate::tokens::Token| {
        t.line != line
            || (t.kind == TokenKind::Punct
                && (STOP.contains(&t.text.as_str()) || t.text == "&&" || t.text == "||"))
    };
    let mut lo = op;
    while lo > 0 && !stops(&ts.tokens[lo - 1]) {
        lo -= 1;
    }
    let mut hi = op + 1;
    while hi < ts.tokens.len() && !stops(&ts.tokens[hi]) {
        hi += 1;
    }
    (lo..op, op + 1..hi)
}

/// Heuristic: does the token window contain a float literal, a float type
/// token, or an identifier with a unit suffix?
fn window_looks_float(ts: &TokenStream, range: std::ops::Range<usize>) -> bool {
    ts.tokens[range].iter().any(|t| match t.kind {
        TokenKind::Number { is_float } => is_float,
        TokenKind::Ident => {
            t.text == "f64"
                || t.text == "f32"
                || FLOAT_SUFFIXES
                    .iter()
                    .any(|suf| t.text.ends_with(suf) && t.text.len() > suf.len())
        }
        _ => false,
    })
}

// ---------------------------------------------------------------------------
// no-panic
// ---------------------------------------------------------------------------

/// Flags `panic!`, `.unwrap()`, `.expect(`, `todo!` and `unimplemented!` in
/// the non-test library code of the simulation crates. These run inside
/// sweep inner loops; a bad design point must surface as an `Err`, not
/// abort a multi-hour pathfinding run.
fn no_panic(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !NO_PANIC_CRATES.iter().any(|p| f.path.starts_with(p)) {
        return;
    }
    let ts = &f.tokens;
    for (i, t) in ts.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || f.in_test.get(t.line - 1).copied().unwrap_or(false) {
            continue;
        }
        let what = match t.text.as_str() {
            "panic" if ts.is_text(i + 1, "!") => "explicit panic",
            "todo" if ts.is_text(i + 1, "!") => "todo! placeholder",
            "unimplemented" if ts.is_text(i + 1, "!") => "unimplemented! placeholder",
            "unwrap" if i > 0 && ts.is_text(i - 1, ".") && ts.is_text(i + 1, "(") => {
                "Option/Result unwrap"
            }
            "expect" if i > 0 && ts.is_text(i - 1, ".") && ts.is_text(i + 1, "(") => {
                "Option/Result expect"
            }
            _ => continue,
        };
        push(
            out,
            f,
            t.line,
            "no-panic",
            format!("{what} in simulation library code; return Result or restructure"),
        );
    }
}

// ---------------------------------------------------------------------------
// pub fn signature scanning (shared by unit-newtype and must-use)
// ---------------------------------------------------------------------------

/// A public function signature found in the token stream.
struct PubFn {
    /// 1-based line of the `pub` keyword.
    line: usize,
    name: String,
    /// `true` when the declared return type is exactly `-> f64`.
    returns_bare_f64: bool,
}

fn pub_fns(f: &SourceFile) -> Vec<PubFn> {
    let ts = &f.tokens;
    let mut fns = Vec::new();
    for (i, t) in ts.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "pub" {
            continue;
        }
        // `pub fn` or `pub const fn` (visibility scopes like `pub(crate)`
        // are intentionally not matched, as before the token port).
        let fn_idx = if ts.is_ident(i + 1, "fn") {
            i + 1
        } else if ts.is_ident(i + 1, "const") && ts.is_ident(i + 2, "fn") {
            i + 2
        } else {
            continue;
        };
        let Some(name_tok) = ts.tokens.get(fn_idx + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // Skip the generic parameter list, then the argument parens.
        let mut j = fn_idx + 2;
        if ts.is_text(j, "<") {
            let mut angle = 1i32;
            j += 1;
            while j < ts.tokens.len() && angle > 0 {
                match ts.tokens[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    _ => {}
                }
                j += 1;
            }
        }
        while j < ts.tokens.len() && !ts.is_text(j, "(") {
            j += 1;
        }
        let mut depth = 0i32;
        while j < ts.tokens.len() {
            match ts.tokens[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // Return clause: the tokens after `)` up to the body/terminator.
        let returns_bare_f64 = ts.is_text(j + 1, "->") && ts.is_ident(j + 2, "f64");
        fns.push(PubFn {
            line: t.line,
            name: name_tok.text.clone(),
            returns_bare_f64,
        });
    }
    fns
}

/// Does the raw source carry `#[must_use]` in the attribute block directly
/// above `line` (1-based)?
fn has_must_use_above(f: &SourceFile, line: usize) -> bool {
    // The attribute may also sit on the `pub fn` line itself in pathological
    // formatting; check it first.
    if f.raw
        .get(line - 1)
        .is_some_and(|l| l.contains("#[must_use]"))
    {
        return true;
    }
    let mut i = line - 1; // index of the fn line in 0-based raw
    while i > 0 {
        i -= 1;
        let t = f.raw[i].trim();
        if t.contains("#[must_use]") {
            return true;
        }
        // Keep walking through other attributes and doc comments.
        if t.starts_with("#[") || t.starts_with("///") || t.starts_with("//") || t.is_empty() {
            continue;
        }
        break;
    }
    false
}

// ---------------------------------------------------------------------------
// unit-newtype
// ---------------------------------------------------------------------------

/// In `efficsense-power`, public functions whose names promise a power,
/// energy, charge or capacitance must return the corresponding `units`
/// newtype, not a bare `f64` — mixing up a watt and a farad type-checks
/// otherwise.
fn unit_newtype(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.path.starts_with("crates/power/src/") {
        return;
    }
    for pf in pub_fns(f) {
        if !pf.returns_bare_f64 || f.in_test[pf.line - 1] {
            continue;
        }
        let n = pf.name.as_str();
        let unit_like = n.ends_with("_w")
            || n.ends_with("_j")
            || n.ends_with("_f")
            || n.contains("power")
            || n.contains("energy")
            || n.contains("capacitance")
            || n.contains("charge");
        if unit_like {
            push(
                out,
                f,
                pf.line,
                "unit-newtype",
                format!(
                    "`{n}` returns a raw f64 for a dimensioned quantity; return a units \
                     newtype (Watts/Joules/Farads)"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// must-use
// ---------------------------------------------------------------------------

/// Scalar power/energy/metric computations whose result is silently dropped
/// are always bugs; require `#[must_use]` on them. Newtype returns are
/// covered by the `#[must_use]` on the unit structs themselves.
fn must_use(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let in_scope = f.path.starts_with("crates/power/src/") || f.path == "crates/dsp/src/metrics.rs";
    if !in_scope {
        return;
    }
    for pf in pub_fns(f) {
        if !pf.returns_bare_f64 || f.in_test[pf.line - 1] {
            continue;
        }
        let n = pf.name.as_str();
        let metric_like = n.ends_with("_db")
            || n.ends_with("_w")
            || n.ends_with("_j")
            || n.ends_with("_percent")
            || n.contains("power")
            || n.contains("energy")
            || n.contains("sndr")
            || n.contains("snr")
            || n.contains("enob")
            || n.contains("thd")
            || n.contains("nmse")
            || n.contains("rmse")
            || n.contains("nef");
        if metric_like && !has_must_use_above(f, pf.line) {
            push(
                out,
                f,
                pf.line,
                "must-use",
                format!("`{n}` computes a power/energy/quality figure; mark it #[must_use]"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// seeded-rng
// ---------------------------------------------------------------------------

/// All stochastic behaviour must be reproducible from explicit seeds:
/// Monte-Carlo mismatch draws, sensing matrices and noise streams are part
/// of the experiment record. Ambient-entropy constructors are only
/// acceptable in the bench crate.
fn seeded_rng(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.path.starts_with("crates/bench/") {
        return;
    }
    const AMBIENT_IDENTS: [&str; 5] = [
        "thread_rng",
        "from_entropy",
        "OsRng",
        "getrandom",
        "from_os_rng",
    ];
    let ts = &f.tokens;
    let mut flagged_lines: Vec<usize> = Vec::new();
    for (i, t) in ts.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let pat = if AMBIENT_IDENTS.contains(&t.text.as_str()) {
            t.text.clone()
        } else if t.text == "rand" && ts.matches(i + 1, &["::", "random"]) {
            "rand::random".to_string()
        } else {
            continue;
        };
        if flagged_lines.contains(&t.line) {
            continue;
        }
        flagged_lines.push(t.line);
        push(
            out,
            f,
            t.line,
            "seeded-rng",
            format!("`{pat}` draws ambient entropy; construct Rng64 from an explicit seed"),
        );
    }
}

// ---------------------------------------------------------------------------
// finite-guard
// ---------------------------------------------------------------------------

/// The hot numerical kernels must assert finiteness at stage boundaries in
/// debug builds — a NaN born in a Cholesky solve otherwise propagates
/// silently into every downstream metric. The rule is satisfied by any
/// `debug_assert…is_finite` combination or a `debug_assert_all_finite` call.
fn finite_guard(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !FINITE_GUARD_FILES.contains(&f.path.as_str()) {
        return;
    }
    let mut has_all_finite = false;
    let mut has_debug_assert = false;
    let mut has_is_finite = false;
    for t in &f.tokens.tokens {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "debug_assert_all_finite" => has_all_finite = true,
            "is_finite" => has_is_finite = true,
            w if w.starts_with("debug_assert") => has_debug_assert = true,
            _ => {}
        }
    }
    if !(has_all_finite || (has_debug_assert && has_is_finite)) {
        push(
            out,
            f,
            1,
            "finite-guard",
            "hot numerical kernel lacks debug_assert finiteness guards at stage boundaries"
                .to_string(),
        );
    }
}

// ---------------------------------------------------------------------------
// ambient-time
// ---------------------------------------------------------------------------

/// Library code must read time through the pluggable `efficsense_obs` clock
/// (`ObsRegistry::now_ns`), never ambient sources: a stray `Instant::now`
/// makes cached replay and logical-clock snapshots nondeterministic. Only
/// the clock implementations themselves may touch `std::time`.
fn ambient_time(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_lib_scope(f) || AMBIENT_TIME_EXEMPT.contains(&f.path.as_str()) {
        return;
    }
    let ts = &f.tokens;
    for (i, t) in ts.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let what = match t.text.as_str() {
            "Instant" if ts.matches(i + 1, &["::", "now"]) => "Instant::now()",
            "SystemTime" => "SystemTime",
            _ => continue,
        };
        push(
            out,
            f,
            t.line,
            "ambient-time",
            format!(
                "{what} reads the ambient clock; route through the pluggable obs clock \
                 (ObsRegistry::now_ns) so runs stay replayable"
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

/// Iterating a `HashMap`/`HashSet` yields a different order every process
/// run (SipHash keying), which silently breaks JSONL persistence,
/// `PointKey` bit-identity and snapshot comparison the moment the order
/// reaches an output. The rule flags iteration over bindings declared with
/// a hash-map type unless the enclosing function also sorts (or collects
/// into a `BTreeMap`/`BTreeSet`); order-insensitive reductions can carry a
/// per-line escape.
fn unordered_iter(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_lib_scope(f) {
        return;
    }
    let ts = &f.tokens;
    let hash_names = hash_typed_names(ts);
    if hash_names.is_empty() {
        return;
    }
    const ITER_METHODS: [&str; 7] = [
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "drain",
    ];
    const SORT_HINTS: [&str; 7] = [
        "sort",
        "sort_unstable",
        "sort_by",
        "sort_by_key",
        "sort_unstable_by_key",
        "BTreeMap",
        "BTreeSet",
    ];
    for (i, t) in ts.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !hash_names.contains(&t.text) {
            continue;
        }
        // `map.iter()` / `map.keys()` / ... or `for k in &map {`.
        let method_iter = ts.is_text(i + 1, ".")
            && ts
                .tokens
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
            && ts.is_text(i + 3, "(");
        let for_iter = (i > 0 && ts.is_ident(i - 1, "in"))
            || (i > 1 && ts.is_text(i - 1, "&") && ts.is_ident(i - 2, "in"))
            || (i > 2
                && ts.is_ident(i - 1, "mut")
                && ts.is_text(i - 2, "&")
                && ts.is_ident(i - 3, "in"));
        if !(method_iter || for_iter) {
            continue;
        }
        // Escape hatch: the enclosing function sorts the collected order.
        let sorted_in_fn = ts.fn_body_range(i).is_some_and(|(lo, hi)| {
            ts.tokens[lo..hi]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && SORT_HINTS.contains(&t.text.as_str()))
        });
        if sorted_in_fn {
            continue;
        }
        push(
            out,
            f,
            t.line,
            "unordered-iter",
            format!(
                "iteration over hash-ordered `{}` without a sort in the same function; \
                 use BTreeMap/BTreeSet or sort before the order can reach an output",
                t.text
            ),
        );
    }
}

/// Binding and field names declared with a `HashMap`/`HashSet` as the
/// outermost type constructor (`x: HashMap<..>`, `let x = HashMap::new()`).
/// Wrapped declarations (`Vec<Mutex<HashMap<..>>>`) are not collected — the
/// outer container owns the iteration order there.
fn hash_typed_names(ts: &TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in ts.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name : [&] [mut] [std :: collections ::] HashMap`
        if ts.is_text(i + 1, ":") {
            let mut j = i + 2;
            while ts.is_text(j, "&") || ts.is_ident(j, "mut") {
                j += 1;
            }
            if ts.matches(j, &["std", "::", "collections", "::"]) {
                j += 4;
            }
            if ts.is_ident(j, "HashMap") || ts.is_ident(j, "HashSet") {
                names.push(t.text.clone());
            }
        }
        // `let [mut] name = HashMap::new()` (or with_capacity etc.)
        if t.text == "let" {
            let mut j = i + 1;
            if ts.is_ident(j, "mut") {
                j += 1;
            }
            if ts.tokens.get(j).is_some_and(|n| n.kind == TokenKind::Ident)
                && ts.is_text(j + 1, "=")
                && (ts.is_ident(j + 2, "HashMap") || ts.is_ident(j + 2, "HashSet"))
            {
                names.push(ts.tokens[j].text.clone());
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

// ---------------------------------------------------------------------------
// atomic-ordering
// ---------------------------------------------------------------------------

/// Names that mark an atomic as a plain monotonic counter, where
/// `Ordering::Relaxed` is always sound (no other memory depends on the
/// value). Everything else — flags, state machines, published pointers —
/// needs an explicit `// relaxed: <why>` justification within two lines.
const COUNTER_HINTS: [&str; 13] = [
    "count",
    "counter",
    "hit",
    "miss",
    "total",
    "next",
    "done",
    "bucket",
    "_ns",
    "attempt",
    "evaluation",
    "tick",
    "idx",
];

fn atomic_ordering(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_lib_scope(f) {
        return;
    }
    let ts = &f.tokens;
    for (i, t) in ts.tokens.iter().enumerate() {
        if !(t.kind == TokenKind::Ident
            && t.text == "Ordering"
            && ts.matches(i + 1, &["::", "Relaxed"]))
        {
            continue;
        }
        let receiver = atomic_receiver(ts, i);
        let counter_like = |name: &str| {
            let lower = name.to_ascii_lowercase();
            COUNTER_HINTS.iter().any(|h| lower.contains(h))
        };
        if receiver.as_deref().is_some_and(counter_like) {
            continue;
        }
        // Tuple-field receivers (`self.0.fetch_add`) fall back to the
        // enclosing impl/fn name — `impl Counter` marks its whole body.
        if ts
            .enclosing_impl(i)
            .or_else(|| ts.enclosing_fn(i))
            .is_some_and(counter_like)
        {
            continue;
        }
        if f.comment_near(t.line, 2, "relaxed:") {
            continue;
        }
        let recv = receiver.unwrap_or_else(|| "<unknown>".to_string());
        push(
            out,
            f,
            t.line,
            "atomic-ordering",
            format!(
                "Ordering::Relaxed on non-counter atomic `{recv}`; add a `// relaxed: <why>` \
                 justification or use Acquire/Release"
            ),
        );
    }
}

/// The receiver identifier of the atomic method call whose argument list
/// contains the `Ordering` token at `ord_idx`: walks left to the nearest
/// `.method(` and resolves the identifier before the dot, skipping one
/// index/call suffix (`buckets[i].store` → `buckets`).
fn atomic_receiver(ts: &TokenStream, ord_idx: usize) -> Option<String> {
    // Find the opening paren of the enclosing call.
    let mut depth = 0i32;
    let mut j = ord_idx;
    let open = loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        match ts.tokens[j].text.as_str() {
            ")" | "]" => depth += 1,
            "(" if depth == 0 => break j,
            "(" | "[" => depth -= 1,
            _ => {}
        }
        if ord_idx - j > 64 {
            return None;
        }
    };
    // Expect `recv . method (`.
    if open < 2 || !ts.is_text(open - 2, ".") {
        return None;
    }
    let mut r = open - 3;
    // Skip one `[...]` or `(...)` suffix on the receiver.
    while let Some("]" | ")") = ts.tokens.get(r).map(|t| t.text.as_str()) {
        let close = ts.tokens[r].text.clone();
        let open_c = if close == "]" { "[" } else { "(" };
        let mut d = 1i32;
        while r > 0 && d > 0 {
            r -= 1;
            let s = ts.tokens[r].text.as_str();
            if s == close {
                d += 1;
            } else if s == open_c {
                d -= 1;
            }
        }
        if r == 0 {
            return None;
        }
        r -= 1;
    }
    let t = ts.tokens.get(r)?;
    (t.kind == TokenKind::Ident).then(|| t.text.clone())
}

// ---------------------------------------------------------------------------
// unsafe-audit / static-mut
// ---------------------------------------------------------------------------

/// Every `unsafe` keyword needs a `// SAFETY:` comment on the same or up to
/// three preceding lines, and `static mut` is banned outright (its aliasing
/// rules are almost impossible to uphold under the sweep's worker threads).
/// The workspace denies `unsafe_code` crate-wide today; this rule keeps the
/// audit trail honest if an exception is ever carved out.
fn unsafe_audit(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let ts = &f.tokens;
    for (i, t) in ts.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "static" && ts.is_ident(i + 1, "mut") {
            push(
                out,
                f,
                t.line,
                "static-mut",
                "`static mut` is unsynchronisable under worker threads; use an atomic, \
                 Mutex, or OnceLock"
                    .to_string(),
            );
            continue;
        }
        if t.text == "unsafe" && !f.comment_near(t.line, 3, "safety:") {
            push(
                out,
                f,
                t.line,
                "unsafe-audit",
                "`unsafe` without a `// SAFETY:` comment documenting the upheld invariants"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// cast-truncation
// ---------------------------------------------------------------------------

/// Numeric types an `as` cast may silently truncate into. `usize`/`u64`
/// targets are deliberately not listed: float→usize index math with an
/// explicit `.floor()`/`.round()` is idiomatic in the kernels, and the
/// finite guards bound the operands.
const NARROW_TARGETS: [&str; 7] = ["u8", "i8", "u16", "i16", "u32", "i32", "f32"];

/// In the hot numerical kernels, a bare `as` cast to a narrow type can wrap
/// or lose precision exactly where a wrong sample index or coefficient is
/// least visible. Use `try_from` + error handling, widen the type, or carry
/// a per-line escape with the justification.
fn cast_truncation(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !FINITE_GUARD_FILES.contains(&f.path.as_str()) {
        return;
    }
    let ts = &f.tokens;
    for (i, t) in ts.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || t.text != "as"
            || f.in_test.get(t.line - 1).copied().unwrap_or(false)
        {
            continue;
        }
        let Some(target) = ts.tokens.get(i + 1) else {
            continue;
        };
        if target.kind == TokenKind::Ident && NARROW_TARGETS.contains(&target.text.as_str()) {
            push(
                out,
                f,
                t.line,
                "cast-truncation",
                format!(
                    "bare `as {}` can truncate silently in a hot kernel; use try_from or \
                     widen the type",
                    target.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(&SourceFile::parse(path, src))
    }

    #[test]
    fn float_eq_catches_literal_comparison() {
        let d = lint("crates/ml/src/x.rs", "fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "float-eq");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn float_eq_catches_unit_suffixed_identifiers() {
        let src = "fn same(a: &P, b: &P) -> bool { a.power_w == b.power_w }\n";
        let d = lint("crates/ml/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "float-eq");
    }

    #[test]
    fn float_eq_ignores_integer_and_compound_ops() {
        let src = "fn f(x: usize) -> bool { x == 10 && x != 3 && x <= 4 }\n";
        assert!(lint("crates/ml/src/x.rs", src).is_empty());
    }

    #[test]
    fn no_panic_only_in_gated_crates() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint("crates/dsp/src/x.rs", src).len(), 1);
        assert!(lint("crates/ml/src/x.rs", src).is_empty());
    }

    #[test]
    fn no_panic_covers_the_evaluation_cache_modules() {
        // The sweep-result cache and the CS artifact memo run inside sweep
        // inner loops; both must stay under the no-panic rule even if the
        // crate prefix list is ever rewritten as an explicit file list.
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        for path in ["crates/core/src/cache.rs", "crates/cs/src/memo.rs"] {
            let d = lint(path, src);
            assert!(
                d.iter().any(|d| d.rule == "no-panic"),
                "{path} must be no-panic gated"
            );
        }
    }

    #[test]
    fn no_panic_and_seeded_rng_cover_the_faults_crate() {
        let panicky = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint("crates/faults/src/plan.rs", panicky).len(), 1);
        let ambient = "fn f() { let mut rng = thread_rng(); }\n";
        assert!(lint("crates/faults/src/link.rs", ambient)
            .iter()
            .any(|d| d.rule == "seeded-rng"));
    }

    #[test]
    fn no_panic_covers_the_telemetry_crate() {
        // Spans and counters run inside the same inner loops they observe;
        // a panicking instrument would abort the sweep it was watching.
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let d = lint("crates/obs/src/registry.rs", src);
        assert!(
            d.iter().any(|d| d.rule == "no-panic"),
            "crates/obs must be no-panic gated"
        );
    }

    #[test]
    fn no_panic_exempts_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(lint("crates/dsp/src/x.rs", src).is_empty());
    }

    #[test]
    fn pub_fn_scanner_handles_multiline_signatures() {
        let src = "pub fn walden_fom_j_per_step(\n    power_w: f64,\n    enob: f64,\n) -> f64 {\n    0.0\n}\n";
        let f = SourceFile::parse("crates/power/src/fom.rs", src);
        let fns = pub_fns(&f);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "walden_fom_j_per_step");
        assert!(fns[0].returns_bare_f64);
        assert_eq!(fns[0].line, 1);
    }

    #[test]
    fn pub_fn_scanner_skips_generics_and_wrapped_returns() {
        let src = "pub fn pick<T: Ord>(xs: &[T]) -> f64 { 0.0 }\npub fn wrapped() -> Result<f64, E> { Ok(0.0) }\n";
        let f = SourceFile::parse("crates/power/src/fom.rs", src);
        let fns = pub_fns(&f);
        assert_eq!(fns.len(), 2);
        assert!(fns[0].returns_bare_f64);
        assert!(!fns[1].returns_bare_f64, "Result<f64> is not bare f64");
    }

    #[test]
    fn unit_newtype_flags_raw_f64_power_return() {
        let src = "pub fn power_w(&self) -> f64 { 1.0 }\n";
        let d = lint("crates/power/src/models.rs", src);
        assert!(d.iter().any(|d| d.rule == "unit-newtype"), "{d:?}");
    }

    #[test]
    fn must_use_accepts_annotated_fn() {
        let src = "#[must_use]\npub fn sndr_db(x: f64) -> f64 { x }\n";
        let d = lint("crates/dsp/src/metrics.rs", src);
        assert!(!d.iter().any(|d| d.rule == "must-use"), "{d:?}");
    }

    #[test]
    fn seeded_rng_flags_ambient_sources_outside_bench() {
        let src = "fn f() { let mut rng = thread_rng(); }\n";
        assert_eq!(lint("crates/signals/src/x.rs", src).len(), 1);
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn finite_guard_requires_guard_in_hot_kernels() {
        let bare = "pub fn omp() {}\n";
        let d = lint("crates/cs/src/recon.rs", bare);
        assert!(d.iter().any(|d| d.rule == "finite-guard"));
        let guarded = "pub fn omp(y: &[f64]) { debug_assert_all_finite(y, \"omp\"); }\n";
        assert!(lint("crates/cs/src/recon.rs", guarded).is_empty());
        // Not a hot kernel → no requirement.
        assert!(lint("crates/cs/src/matrix.rs", bare).is_empty());
    }

    #[test]
    fn allow_escape_suppresses_same_and_next_line() {
        let same = "fn f(v: f64) -> bool { v == 0.0 } // lint:allow(float-eq)\n";
        assert!(lint("crates/ml/src/x.rs", same).is_empty());
        let preceding =
            "// lint:allow(float-eq) — definitional zero check\nfn f(v: f64) -> bool { v == 0.0 }\n";
        assert!(lint("crates/ml/src/x.rs", preceding).is_empty());
        let wrong_rule = "fn f(v: f64) -> bool { v == 0.0 } // lint:allow(no-panic)\n";
        let d = lint("crates/ml/src/x.rs", wrong_rule);
        assert!(d.iter().any(|d| d.rule == "float-eq"), "{d:?}");
        assert!(
            d.iter().any(|d| d.rule == "stale-allow"),
            "the mismatched escape is itself stale: {d:?}"
        );
    }

    #[test]
    fn ambient_time_flags_instant_and_systemtime_in_lib_code() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let d = lint("crates/core/src/sweep.rs", src);
        assert!(d.iter().any(|d| d.rule == "ambient-time"), "{d:?}");
        let sys = "fn f() -> SystemTime { SystemTime::now() }\n";
        assert!(lint("crates/faults/src/plan.rs", sys)
            .iter()
            .any(|d| d.rule == "ambient-time"));
        // The clock implementations and the bench crate are exempt.
        assert!(lint("crates/obs/src/clock.rs", src).is_empty());
        assert!(lint("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unordered_iter_flags_unsorted_hash_iteration() {
        let src = "use std::collections::HashMap;\nfn dump(m: &HashMap<u32, u32>) {\n    for (k, v) in m.iter() { out(k, v); }\n}\n";
        let d = lint("crates/core/src/cache.rs", src);
        assert!(d.iter().any(|d| d.rule == "unordered-iter"), "{d:?}");
    }

    #[test]
    fn unordered_iter_accepts_sorted_collection_in_same_fn() {
        let src = "fn dump(m: &HashMap<u32, u32>) {\n    let mut v: Vec<_> = m.iter().collect();\n    v.sort_unstable();\n}\n";
        let d = lint("crates/core/src/cache.rs", src);
        assert!(
            !d.iter().any(|d| d.rule == "unordered-iter"),
            "sorting in the same fn clears the rule: {d:?}"
        );
    }

    #[test]
    fn unordered_iter_ignores_wrapped_and_non_hash_bindings() {
        let src = "fn f(shards: Vec<Mutex<HashMap<u32, u32>>>, v: &Vec<u32>) {\n    for s in shards.iter() {}\n    for x in v.iter() {}\n}\n";
        assert!(lint("crates/core/src/cache.rs", src).is_empty());
    }

    #[test]
    fn atomic_ordering_accepts_counters_and_justified_flags() {
        let counter = "fn f(hits: &AtomicU64) { hits.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(lint("crates/obs/src/metrics.rs", counter).is_empty());
        let justified = "fn f(flag: &AtomicBool) {\n    // relaxed: advisory flag, stale reads are harmless\n    flag.store(true, Ordering::Relaxed);\n}\n";
        assert!(lint("crates/obs/src/registry.rs", justified).is_empty());
    }

    #[test]
    fn atomic_ordering_flags_unjustified_non_counter() {
        let src = "fn f(flag: &AtomicBool) { flag.store(true, Ordering::Relaxed); }\n";
        let d = lint("crates/obs/src/registry.rs", src);
        assert!(d.iter().any(|d| d.rule == "atomic-ordering"), "{d:?}");
        assert!(d[0].message.contains("`flag`"), "{}", d[0].message);
    }

    #[test]
    fn atomic_ordering_resolves_indexed_receivers_and_impl_fallback() {
        let indexed = "fn f(&self) { self.buckets[i].fetch_add(1, Ordering::Relaxed); }\n";
        assert!(lint("crates/obs/src/metrics.rs", indexed).is_empty());
        let tuple =
            "impl Counter {\n    fn add(&self) { self.0.fetch_add(1, Ordering::Relaxed); }\n}\n";
        assert!(
            lint("crates/obs/src/metrics.rs", tuple).is_empty(),
            "impl Counter marks tuple-field atomics as counters"
        );
    }

    #[test]
    fn unsafe_audit_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let d = lint("crates/cs/src/x.rs", bad);
        assert!(d.iter().any(|d| d.rule == "unsafe-audit"), "{d:?}");
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        assert!(lint("crates/cs/src/x.rs", good).is_empty());
        // The deny attribute's `unsafe_code` ident is not the keyword.
        assert!(lint("crates/cs/src/x.rs", "#![deny(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn static_mut_is_always_flagged() {
        let src = "static mut GLOBAL: u32 = 0;\n";
        let d = lint("crates/core/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == "static-mut"), "{d:?}");
    }

    #[test]
    fn cast_truncation_flags_narrow_casts_in_kernels_only() {
        let src = "pub fn f(n: usize) -> u32 { debug_assert!(n.is_finite());\n    n as u32\n}\n";
        let d = lint("crates/dsp/src/fft.rs", src);
        assert!(d.iter().any(|d| d.rule == "cast-truncation"), "{d:?}");
        // Same code outside the kernel list is fine.
        assert!(lint("crates/dsp/src/window.rs", src).is_empty());
        // Widening casts are fine even in kernels.
        let widen =
            "pub fn f(n: u32) -> f64 { debug_assert!(x.is_finite());\n    f64::from(n)\n}\n";
        assert!(lint("crates/dsp/src/fft.rs", widen).is_empty());
    }

    #[test]
    fn stale_allow_flags_unused_escapes() {
        let src = "// lint:allow(float-eq)\nfn f(x: u32) -> bool { x == 1 }\n";
        let d = lint("crates/ml/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "stale-allow");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn stale_allow_ignores_unknown_rule_names() {
        // Doc prose like `lint:allow(rule-id)` must not trip the linter on
        // its own documentation.
        let src = "// the escape syntax is lint:allow(rule-id)\nfn f() {}\n";
        assert!(lint("crates/ml/src/x.rs", src).is_empty());
    }

    #[test]
    fn used_whole_file_allow_is_not_stale() {
        let src = "// lint:allow(finite-guard) — validated at the API boundary\npub fn omp() {}\n";
        assert!(lint("crates/cs/src/recon.rs", src).is_empty());
    }
}
