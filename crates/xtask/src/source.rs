//! Lexical preprocessing of Rust source for the lint rules.
//!
//! The rules are textual, so before matching we strip everything that is not
//! code: line and (nested) block comments, string literals (including raw
//! strings with any number of `#` guards), byte strings, and character
//! literals. Stripped spans are replaced with spaces so every diagnostic
//! keeps its original line and column structure.
//!
//! The preprocessor also computes, per line, whether the line falls inside a
//! `#[cfg(test)]` item or a `#[test]` function, so rules can exempt test
//! code, and collects `lint:allow(rule-id)` escape comments.

/// A preprocessed source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Original lines (used for `lint:allow` detection only).
    pub raw: Vec<String>,
    /// Lines with comments and literals blanked to spaces.
    pub clean: Vec<String>,
    /// `in_test[i]` is true when line `i` is inside test-only code.
    pub in_test: Vec<bool>,
    /// `(line, rule-id)` pairs from `lint:allow(...)` comments.
    pub allows: Vec<(usize, String)>,
}

impl SourceFile {
    /// Preprocesses `text` under the given workspace-relative `path`.
    pub fn parse(path: &str, text: &str) -> Self {
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let clean = strip(text);
        let clean_lines: Vec<String> = clean.lines().map(str::to_string).collect();
        let in_test = test_lines(&clean_lines);
        let allows = collect_allows(&raw);
        SourceFile {
            path: path.to_string(),
            raw,
            clean: clean_lines,
            in_test,
            allows,
        }
    }

    /// True when a diagnostic for `rule` at 1-based `line` is suppressed by a
    /// `lint:allow(rule)` comment on the same or the preceding line.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
    }

    /// True when any line of the file carries `lint:allow(rule)` — used by
    /// whole-file rules such as `finite-guard`.
    pub fn allowed_anywhere(&self, rule: &str) -> bool {
        self.allows.iter().any(|(_, r)| r == rule)
    }
}

/// Replaces comments and literals with spaces, preserving line structure.
fn strip(text: &str) -> String {
    let b: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let n = b.len();
    let mut i = 0;

    // Emits `c` verbatim for newlines (to keep line numbers) else a space.
    fn blank(out: &mut String, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }

    while i < n {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                blank(&mut out, b[i]);
                i += 1;
            }
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1usize;
            blank(&mut out, b[i]);
            blank(&mut out, b[i + 1]);
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"..." / r#"..."# (and br variants).
        let (is_raw, raw_start) = if c == 'r' && !prev_is_ident(&b, i) {
            (looks_like_raw_string(&b, i), i)
        } else if c == 'b' && i + 1 < n && b[i + 1] == 'r' && !prev_is_ident(&b, i) {
            (looks_like_raw_string(&b, i + 1), i)
        } else {
            (false, i)
        };
        if is_raw {
            let hash_from = if b[raw_start] == 'b' {
                raw_start + 2
            } else {
                raw_start + 1
            };
            let mut hashes = 0usize;
            let mut j = hash_from;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            // j is at the opening quote.
            j += 1;
            // Scan to `"` followed by `hashes` hash marks.
            while j < n {
                if b[j] == '"' {
                    let mut k = 0;
                    while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        j += 1 + hashes;
                        break;
                    }
                }
                j += 1;
            }
            while i < j.min(n) {
                blank(&mut out, b[i]);
                i += 1;
            }
            continue;
        }
        // Ordinary string literal (and byte string).
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"' && !prev_is_ident(&b, i)) {
            if c == 'b' {
                blank(&mut out, b[i]);
                i += 1;
            }
            blank(&mut out, b[i]);
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                    continue;
                }
                let done = b[i] == '"';
                blank(&mut out, b[i]);
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if is_char_literal(&b, i) {
                blank(&mut out, b[i]);
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        blank(&mut out, b[i]);
                        blank(&mut out, b[i + 1]);
                        i += 2;
                        continue;
                    }
                    let done = b[i] == '\'';
                    blank(&mut out, b[i]);
                    i += 1;
                    if done {
                        break;
                    }
                }
            } else {
                // Lifetime: keep the tick so generic syntax stays intact.
                out.push('\'');
                i += 1;
            }
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

fn looks_like_raw_string(b: &[char], r_pos: usize) -> bool {
    let mut j = r_pos + 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

/// Distinguishes `'a'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(b: &[char], i: usize) -> bool {
    let n = b.len();
    if i + 1 >= n {
        return false;
    }
    if b[i + 1] == '\\' {
        return true;
    }
    // 'x' — a single char followed by a closing quote.
    i + 2 < n && b[i + 1] != '\'' && b[i + 2] == '\''
}

/// Marks lines covered by `#[cfg(test)]` items or `#[test]` functions.
fn test_lines(clean: &[String]) -> Vec<bool> {
    let mut marks = vec![false; clean.len()];
    let joined: Vec<&str> = clean.iter().map(String::as_str).collect();
    for (idx, line) in joined.iter().enumerate() {
        let trimmed = line.trim();
        let is_marker = trimmed.contains("#[cfg(test)]") || trimmed == "#[test]";
        if !is_marker {
            continue;
        }
        // Walk forward to the item's body: the span runs to the matching `}`
        // of the first `{`, or to the first `;` if that comes sooner (e.g.
        // `#[cfg(test)] use ...;`).
        let mut depth = 0usize;
        let mut entered = false;
        'outer: for (j, l) in joined.iter().enumerate().skip(idx) {
            marks[j] = true;
            for c in l.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            break 'outer;
                        }
                    }
                    ';' if !entered => break 'outer,
                    _ => {}
                }
            }
        }
    }
    marks
}

/// Collects `(line, rule)` pairs from `lint:allow(rule[, rule...])` comments.
fn collect_allows(raw: &[String]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in raw.iter().enumerate() {
        let mut rest = line.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            let after = &rest[pos + "lint:allow(".len()..];
            if let Some(close) = after.find(')') {
                for rule in after[..close].split(',') {
                    let rule = rule.trim();
                    if !rule.is_empty() {
                        out.push((i + 1, rule.to_string()));
                    }
                }
                rest = &after[close + 1..];
            } else {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let src = "let x = 1.0; // x == 2.0\nlet s = \"a == b\";\n/* y != 0.0 */ let z = 3;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.clean[0].contains("=="));
        assert!(!f.clean[1].contains("=="));
        assert!(!f.clean[2].contains("!="));
        assert!(f.clean[0].contains("let x = 1.0;"));
        assert!(f.clean[2].contains("let z = 3;"));
    }

    #[test]
    fn strips_raw_and_byte_strings() {
        let src = "let a = r#\"x == 1.0\"#;\nlet b = br\"y != 2.0\";\nlet c = b\"z == 3.0\";\n";
        let f = SourceFile::parse("t.rs", src);
        for l in &f.clean {
            assert!(
                !l.contains("==") && !l.contains("!="),
                "leaked literal: {l}"
            );
        }
    }

    #[test]
    fn char_literals_blanked_lifetimes_kept() {
        let src = "fn f<'a>(x: &'a str) -> char { '=' }\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.clean[0].contains("<'a>"));
        assert!(
            !f.clean[0].contains('='),
            "char literal leaked: {}",
            f.clean[0]
        );
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner == */ still != comment */ let q = 1;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.clean[0].contains("!="));
        assert!(f.clean[0].contains("let q = 1;"));
    }

    #[test]
    fn cfg_test_span_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_use_statement_spans_one_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.in_test, vec![true, true, false]);
    }

    #[test]
    fn allow_comments_parse_and_apply() {
        let src = "let a = 1; // lint:allow(float-eq)\nlet b = a;\nlet c = b; // lint:allow(no-panic, float-eq)\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.allowed("float-eq", 1));
        assert!(
            f.allowed("float-eq", 2),
            "allow also covers the following line"
        );
        assert!(!f.allowed("float-eq", 30));
        assert!(f.allowed("no-panic", 3));
        assert!(f.allowed_anywhere("no-panic"));
        assert!(!f.allowed_anywhere("seeded-rng"));
    }
}
