//! Lexical preprocessing of Rust source for the lint rules.
//!
//! Before any rule runs, the raw text is split into two aligned views:
//! *clean* (comments and literals blanked to spaces — what the token engine
//! lexes) and *comments* (everything except comment text blanked — where
//! `lint:allow` escapes and justification comments are read from). Both
//! views keep the original line and column structure, so every diagnostic
//! points at real source coordinates.
//!
//! The preprocessor also computes, per line, whether the line falls inside a
//! `#[cfg(test)]` item or a `#[test]` function, so rules can exempt test
//! code. Escape comments are collected as `(line, rule-id)` pairs; because
//! they are read from the comment view, a `lint:allow(...)` inside a string
//! literal (e.g. in the linter's own tests) neither suppresses anything nor
//! counts against the suppression budget.

use crate::tokens::TokenStream;

/// A preprocessed source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Original lines (used for attribute lookups such as `#[must_use]`).
    pub raw: Vec<String>,
    /// Lines with comments and literals blanked to spaces.
    pub clean: Vec<String>,
    /// Lines with everything *except* comment text blanked to spaces.
    pub comments: Vec<String>,
    /// Token stream lexed from the clean text, with scope tracking.
    pub tokens: TokenStream,
    /// `in_test[i]` is true when line `i` is inside test-only code.
    pub in_test: Vec<bool>,
    /// `(line, rule-id)` pairs from `lint:allow(...)` escape comments.
    pub allows: Vec<(usize, String)>,
}

impl SourceFile {
    /// Preprocesses `text` under the given workspace-relative `path`.
    pub fn parse(path: &str, text: &str) -> Self {
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let (clean, comments) = split(text);
        let clean_lines: Vec<String> = clean.lines().map(str::to_string).collect();
        let comment_lines: Vec<String> = comments.lines().map(str::to_string).collect();
        let tokens = TokenStream::lex(&clean);
        let in_test = test_lines(&clean_lines);
        let allows = collect_allows(&comment_lines);
        SourceFile {
            path: path.to_string(),
            raw,
            clean: clean_lines,
            comments: comment_lines,
            tokens,
            in_test,
            allows,
        }
    }

    /// True when a diagnostic for `rule` at 1-based `line` is suppressed by a
    /// `lint:allow(rule)` comment on the same or the preceding line.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allow_index(rule, line).is_some()
    }

    /// Index into [`SourceFile::allows`] of the escape covering `rule` at
    /// `line` (same or preceding line), if any.
    pub fn allow_index(&self, rule: &str, line: usize) -> Option<usize> {
        self.allows
            .iter()
            .position(|(l, r)| r == rule && (*l == line || *l + 1 == line))
    }

    /// True when any line of the file carries `lint:allow(rule)`.
    ///
    /// Whole-file placement is only honoured for whole-file rules (currently
    /// `finite-guard`); for per-line rules a stray allow must sit on the
    /// offending line, otherwise one escape would suppress every instance in
    /// the file.
    pub fn allowed_anywhere(&self, rule: &str) -> bool {
        self.allow_anywhere_index(rule).is_some()
    }

    /// Index into [`SourceFile::allows`] of the first whole-file escape for
    /// `rule`, if `rule` is a whole-file rule and an escape exists.
    pub fn allow_anywhere_index(&self, rule: &str) -> Option<usize> {
        if !crate::rules::is_whole_file_rule(rule) {
            return None;
        }
        self.allows.iter().position(|(_, r)| r == rule)
    }

    /// True when the comment text on `line` (1-based) or up to `above` lines
    /// before it contains `needle` (case-insensitive). Used by rules that
    /// accept justification comments (`// relaxed: ...`, `// SAFETY: ...`).
    pub fn comment_near(&self, line: usize, above: usize, needle: &str) -> bool {
        let lo = line.saturating_sub(above + 1);
        let hi = line.min(self.comments.len());
        self.comments[lo..hi].iter().any(|l| {
            l.to_ascii_lowercase()
                .contains(&needle.to_ascii_lowercase())
        })
    }
}

/// Splits `text` into (clean, comments): the first with comments and
/// literals blanked, the second with only comment text preserved. Both keep
/// line structure.
fn split(text: &str) -> (String, String) {
    let b: Vec<char> = text.chars().collect();
    let mut code = String::with_capacity(text.len());
    let mut com = String::with_capacity(text.len());
    let n = b.len();
    let mut i = 0;

    // Emits `c` into `keep` and a space (or newline) into `drop`.
    fn emit(keep: &mut String, drop: &mut String, c: char) {
        keep.push(c);
        drop.push(if c == '\n' { '\n' } else { ' ' });
    }

    while i < n {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                emit(&mut com, &mut code, b[i]);
                i += 1;
            }
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1usize;
            emit(&mut com, &mut code, b[i]);
            emit(&mut com, &mut code, b[i + 1]);
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    emit(&mut com, &mut code, b[i]);
                    emit(&mut com, &mut code, b[i + 1]);
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    emit(&mut com, &mut code, b[i]);
                    emit(&mut com, &mut code, b[i + 1]);
                    i += 2;
                } else {
                    emit(&mut com, &mut code, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"..." / r#"..."# (and br variants).
        let (is_raw, raw_start) = if c == 'r' && !prev_is_ident(&b, i) {
            (looks_like_raw_string(&b, i), i)
        } else if c == 'b' && i + 1 < n && b[i + 1] == 'r' && !prev_is_ident(&b, i) {
            (looks_like_raw_string(&b, i + 1), i)
        } else {
            (false, i)
        };
        if is_raw {
            let hash_from = if b[raw_start] == 'b' {
                raw_start + 2
            } else {
                raw_start + 1
            };
            let mut hashes = 0usize;
            let mut j = hash_from;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            // j is at the opening quote.
            j += 1;
            // Scan to `"` followed by `hashes` hash marks.
            while j < n {
                if b[j] == '"' {
                    let mut k = 0;
                    while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        j += 1 + hashes;
                        break;
                    }
                }
                j += 1;
            }
            while i < j.min(n) {
                blank_both(&mut code, &mut com, b[i]);
                i += 1;
            }
            continue;
        }
        // Ordinary string literal (and byte string).
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"' && !prev_is_ident(&b, i)) {
            if c == 'b' {
                blank_both(&mut code, &mut com, b[i]);
                i += 1;
            }
            blank_both(&mut code, &mut com, b[i]);
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    blank_both(&mut code, &mut com, b[i]);
                    blank_both(&mut code, &mut com, b[i + 1]);
                    i += 2;
                    continue;
                }
                let done = b[i] == '"';
                blank_both(&mut code, &mut com, b[i]);
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if is_char_literal(&b, i) {
                blank_both(&mut code, &mut com, b[i]);
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        blank_both(&mut code, &mut com, b[i]);
                        blank_both(&mut code, &mut com, b[i + 1]);
                        i += 2;
                        continue;
                    }
                    let done = b[i] == '\'';
                    blank_both(&mut code, &mut com, b[i]);
                    i += 1;
                    if done {
                        break;
                    }
                }
            } else {
                // Lifetime: keep the tick so generic syntax stays intact.
                emit(&mut code, &mut com, '\'');
                i += 1;
            }
            continue;
        }
        emit(&mut code, &mut com, c);
        i += 1;
    }
    (code, com)
}

/// Blanks `c` in both views (string/char literal content).
fn blank_both(code: &mut String, com: &mut String, c: char) {
    let out = if c == '\n' { '\n' } else { ' ' };
    code.push(out);
    com.push(out);
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

fn looks_like_raw_string(b: &[char], r_pos: usize) -> bool {
    let mut j = r_pos + 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

/// Distinguishes `'a'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(b: &[char], i: usize) -> bool {
    let n = b.len();
    if i + 1 >= n {
        return false;
    }
    if b[i + 1] == '\\' {
        return true;
    }
    // 'x' — a single char followed by a closing quote.
    i + 2 < n && b[i + 1] != '\'' && b[i + 2] == '\''
}

/// Marks lines covered by `#[cfg(test)]` items or `#[test]` functions.
fn test_lines(clean: &[String]) -> Vec<bool> {
    let mut marks = vec![false; clean.len()];
    let joined: Vec<&str> = clean.iter().map(String::as_str).collect();
    for (idx, line) in joined.iter().enumerate() {
        let trimmed = line.trim();
        let is_marker = trimmed.contains("#[cfg(test)]") || trimmed == "#[test]";
        if !is_marker {
            continue;
        }
        // Walk forward to the item's body: the span runs to the matching `}`
        // of the first `{`, or to the first `;` if that comes sooner (e.g.
        // `#[cfg(test)] use ...;`).
        let mut depth = 0usize;
        let mut entered = false;
        'outer: for (j, l) in joined.iter().enumerate().skip(idx) {
            marks[j] = true;
            for c in l.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            break 'outer;
                        }
                    }
                    ';' if !entered => break 'outer,
                    _ => {}
                }
            }
        }
    }
    marks
}

/// Collects `(line, rule)` pairs from `lint:allow(rule[, rule...])` escapes
/// in the comment view.
fn collect_allows(comments: &[String]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in comments.iter().enumerate() {
        let mut rest = line.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            let after = &rest[pos + "lint:allow(".len()..];
            if let Some(close) = after.find(')') {
                for rule in after[..close].split(',') {
                    let rule = rule.trim();
                    if !rule.is_empty() {
                        out.push((i + 1, rule.to_string()));
                    }
                }
                rest = &after[close + 1..];
            } else {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let src = "let x = 1.0; // x == 2.0\nlet s = \"a == b\";\n/* y != 0.0 */ let z = 3;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.clean[0].contains("=="));
        assert!(!f.clean[1].contains("=="));
        assert!(!f.clean[2].contains("!="));
        assert!(f.clean[0].contains("let x = 1.0;"));
        assert!(f.clean[2].contains("let z = 3;"));
    }

    #[test]
    fn comment_view_is_the_inverse_of_clean() {
        let src = "let x = 1; // trailing note\n/* block */ let y = 2;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.comments[0].contains("// trailing note"));
        assert!(!f.comments[0].contains("let x"));
        assert!(f.comments[1].contains("/* block */"));
        assert!(!f.comments[1].contains("let y"));
    }

    #[test]
    fn strips_raw_and_byte_strings() {
        let src = "let a = r#\"x == 1.0\"#;\nlet b = br\"y != 2.0\";\nlet c = b\"z == 3.0\";\n";
        let f = SourceFile::parse("t.rs", src);
        for l in &f.clean {
            assert!(
                !l.contains("==") && !l.contains("!="),
                "leaked literal: {l}"
            );
        }
    }

    #[test]
    fn raw_strings_with_hash_guards_contain_quotes_and_hashes() {
        // `r##"..."##` may contain `"#` sequences without terminating; the
        // code after the literal must survive unblanked.
        let src = "let a = r##\"inner \"# quote == 1.0\"##; let live = 2;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.clean[0].contains("=="), "literal leaked: {}", f.clean[0]);
        assert!(
            f.clean[0].contains("let live = 2;"),
            "code after raw string lost: {}",
            f.clean[0]
        );
    }

    #[test]
    fn char_literals_blanked_lifetimes_kept() {
        let src = "fn f<'a>(x: &'a str) -> char { '=' }\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.clean[0].contains("<'a>"));
        assert!(
            !f.clean[0].contains('='),
            "char literal leaked: {}",
            f.clean[0]
        );
    }

    #[test]
    fn char_literals_containing_quote_and_slash_do_not_derail() {
        // A '"' char must not open a string; a '/' char must not start a
        // comment even when doubled across two literals.
        let src = "let q = '\"'; let s1 = '/'; let s2 = '/'; let live = 1.0 == x;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(
            f.clean[0].contains("=="),
            "code after char literals was swallowed: {}",
            f.clean[0]
        );
        assert!(!f.clean[0].contains('"'), "quote leaked: {}", f.clean[0]);
        // An escaped quote char literal '\"' takes the escape path.
        let src2 = "let e = '\\\"'; let live = 2;\n";
        let f2 = SourceFile::parse("t.rs", src2);
        assert!(f2.clean[0].contains("let live = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner == */ still != comment */ let q = 1;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.clean[0].contains("!="));
        assert!(f.clean[0].contains("let q = 1;"));
        assert!(f.comments[0].contains("inner =="));
    }

    #[test]
    fn deeply_nested_block_comments_close_at_the_right_depth() {
        let src = "/* a /* b /* c */ b */ a */ let x = 1; /* tail */\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.clean[0].contains("let x = 1;"), "{}", f.clean[0]);
        assert!(!f.clean[0].contains('a'), "comment leaked: {}", f.clean[0]);
    }

    #[test]
    fn cfg_test_span_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_span_ends_at_matching_brace_not_first_close() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn a() { if true {} }\n    fn b() {}\n}\nfn lib() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.in_test, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_use_statement_spans_one_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.in_test, vec![true, true, false]);
    }

    #[test]
    fn allow_comments_parse_and_apply() {
        let src = "let a = 1; // lint:allow(float-eq)\nlet b = a;\nlet c = b; // lint:allow(no-panic, float-eq)\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.allowed("float-eq", 1));
        assert!(
            f.allowed("float-eq", 2),
            "allow also covers the following line"
        );
        assert!(!f.allowed("float-eq", 30));
        assert!(f.allowed("no-panic", 3));
    }

    #[test]
    fn allows_inside_string_literals_are_ignored() {
        let src = "let s = \"lint:allow(float-eq)\";\nlet x = 0.0 == y;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.allows.is_empty(), "{:?}", f.allows);
        assert!(!f.allowed("float-eq", 2));
    }

    #[test]
    fn allowed_anywhere_only_applies_to_whole_file_rules() {
        let src = "// lint:allow(finite-guard)\n// lint:allow(no-panic)\nfn f() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.allowed_anywhere("finite-guard"));
        assert!(
            !f.allowed_anywhere("no-panic"),
            "per-line rules must not be suppressed file-wide"
        );
        // The per-line escape still works through `allowed`.
        assert!(f.allowed("no-panic", 2));
    }

    #[test]
    fn comment_near_finds_justifications() {
        let src = "// relaxed: monotonic counter\nlet x = 1;\nlet y = 2;\nlet z = 3;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.comment_near(1, 0, "relaxed:"));
        assert!(f.comment_near(2, 1, "relaxed:"));
        assert!(f.comment_near(3, 2, "RELAXED:"), "case-insensitive");
        assert!(!f.comment_near(4, 1, "relaxed:"));
    }
}
