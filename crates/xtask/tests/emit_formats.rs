//! Round-trip tests for the machine-readable lint output: fixture findings
//! are rendered with `--format json` / `--format sarif` emitters and parsed
//! back with the workspace JSON parser, proving CI consumers can rely on the
//! documents without serde on either side.

use efficsense_obs::json::Json;
use std::collections::BTreeMap;
use xtask::emit::{render_json, render_sarif};
use xtask::{lint_source, LintReport};

fn fixture_report() -> LintReport {
    let mut diagnostics = Vec::new();
    diagnostics.extend(lint_source(
        "crates/dsp/src/fake.rs",
        include_str!("fixtures/float_eq.rs"),
    ));
    diagnostics.extend(lint_source(
        "crates/core/src/fake.rs",
        include_str!("fixtures/ambient_time.rs"),
    ));
    diagnostics.extend(lint_source(
        "crates/obs/src/fake.rs",
        include_str!("fixtures/atomic_ordering.rs"),
    ));
    assert!(!diagnostics.is_empty(), "fixtures must produce findings");
    LintReport {
        diagnostics,
        allow_counts: BTreeMap::from([
            ("float-eq".to_string(), 1),
            ("ambient-time".to_string(), 1),
            ("atomic-ordering".to_string(), 1),
        ]),
    }
}

#[test]
fn json_round_trips_fixture_findings() {
    let report = fixture_report();
    let doc = render_json(&report);
    let json = Json::parse(&doc).expect("emitted JSON must parse");
    let diags = json.get("diagnostics").and_then(Json::as_arr).unwrap();
    assert_eq!(diags.len(), report.diagnostics.len());
    for (got, want) in diags.iter().zip(&report.diagnostics) {
        assert_eq!(
            got.get("path").and_then(Json::as_str),
            Some(want.path.as_str())
        );
        assert_eq!(
            got.get("line").and_then(Json::as_u64),
            Some(want.line as u64)
        );
        assert_eq!(got.get("rule").and_then(Json::as_str), Some(want.rule));
        assert_eq!(
            got.get("message").and_then(Json::as_str),
            Some(want.message.as_str())
        );
    }
    assert_eq!(json.get("total_allows").and_then(Json::as_u64), Some(3));
    let allows = json.get("allows").and_then(Json::as_obj).unwrap();
    assert_eq!(allows.len(), 3);
}

#[test]
fn sarif_round_trips_fixture_findings() {
    let report = fixture_report();
    let doc = render_sarif(&report.diagnostics);
    let json = Json::parse(&doc).expect("emitted SARIF must parse");
    assert_eq!(json.get("version").and_then(Json::as_str), Some("2.1.0"));
    let run = &json.get("runs").and_then(Json::as_arr).unwrap()[0];
    let driver = run.get("tool").and_then(|t| t.get("driver")).unwrap();
    assert_eq!(
        driver.get("name").and_then(Json::as_str),
        Some("xtask-lint")
    );
    let rules = driver.get("rules").and_then(Json::as_arr).unwrap();
    assert_eq!(rules.len(), xtask::rules::RULES.len());
    let results = run.get("results").and_then(Json::as_arr).unwrap();
    assert_eq!(results.len(), report.diagnostics.len());
    for (got, want) in results.iter().zip(&report.diagnostics) {
        assert_eq!(got.get("ruleId").and_then(Json::as_str), Some(want.rule));
        let loc = &got.get("locations").and_then(Json::as_arr).unwrap()[0];
        let phys = loc.get("physicalLocation").unwrap();
        assert_eq!(
            phys.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Json::as_str),
            Some(want.path.as_str())
        );
        assert_eq!(
            phys.get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Json::as_u64),
            Some(want.line as u64)
        );
        // Every result's ruleIndex points at its catalogue entry.
        let idx = got.get("ruleIndex").and_then(Json::as_u64).unwrap() as usize;
        assert_eq!(xtask::rules::RULES[idx].id, want.rule);
    }
}

#[test]
fn workspace_budget_file_parses_and_covers_the_live_census() {
    // The committed budget must parse, and the real workspace's escape
    // census must fit inside it — the same check `cargo xtask lint`
    // enforces, run here so `cargo test` catches drift too.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let text = std::fs::read_to_string(root.join("lint-budget.toml"))
        .expect("lint-budget.toml is committed at the workspace root");
    let budget = xtask::budget::parse(&text).expect("budget file parses");
    let report = xtask::lint_workspace_report(root).expect("walk workspace");
    let over = xtask::budget::check(&budget, &report.allow_counts);
    assert!(
        over.is_empty(),
        "suppression budget exceeded:\n{}",
        over.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
