// Fixture: unit-newtype violations (linted under crates/power/src/).

pub fn leakage_power_w(v_dd: f64) -> f64 {
    v_dd * 1e-9 // VIOLATION at the `pub fn` line above
}

pub fn switching_energy(c: f64, v: f64) -> f64 {
    c * v * v // VIOLATION: energy as raw f64
}

// lint:allow(unit-newtype) — FFI boundary keeps raw f64
pub fn legacy_power_w(v_dd: f64) -> f64 {
    v_dd * 2e-9
}

pub struct Watts(pub f64);

pub fn good_power(v_dd: f64) -> Watts {
    Watts(v_dd * 1e-9) // clean: returns the newtype
}

#[must_use]
pub fn gain_db(x: f64) -> f64 {
    x // clean for unit-newtype: dB is dimensionless
}
