// Fixture: unordered-iter violations (hash iteration without a sort).

use std::collections::{HashMap, HashSet};

pub fn dump(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect() // VIOLATION line 6
}

pub fn visit(set: &HashSet<u32>) {
    for v in set { // VIOLATION line 10
        observe(v);
    }
}

pub fn suppressed(m: &HashMap<u32, u32>) -> u32 {
    m.values().sum() // lint:allow(unordered-iter) — order-insensitive reduction
}

pub fn sorted(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys // clean: order fixed before it can reach an output
}

pub fn not_a_hash(v: &Vec<u32>) -> u32 {
    v.iter().sum() // clean: Vec iteration is ordered
}
