// Fixture: a hot kernel that guards its stage boundary — finite-guard clean.

pub fn omp(y: &[f64]) -> Vec<f64> {
    efficsense_dsp::approx::debug_assert_all_finite(y, "omp measurements");
    let s: Vec<f64> = y.iter().map(|v| v * 2.0).collect();
    debug_assert!(s.iter().all(|v| v.is_finite()), "omp output finite");
    s
}
