// Fixture: seeded-rng violations (linted anywhere outside crates/bench/).

pub fn ambient() -> f64 {
    let mut rng = thread_rng(); // VIOLATION line 4
    rng.gen()
}

pub fn entropy_ctor() -> u64 {
    let rng = SmallRng::from_entropy(); // VIOLATION line 9
    rng.next_u64()
}

pub fn os_rng() -> u64 {
    OsRng.next_u64() // VIOLATION line 14
}

pub fn suppressed() -> u64 {
    OsRng.next_u64() // lint:allow(seeded-rng) — key generation, not simulation
}

pub fn seeded(seed: u64) -> Rng64 {
    Rng64::new(seed) // clean: explicit seed
}
