// Fixture: must-use violations (linted under crates/dsp/src/metrics.rs).

pub fn sndr_db(signal: f64, noise: f64) -> f64 {
    10.0 * (signal / noise).log10() // VIOLATION at the `pub fn` line above
}

pub fn enob_bits(
    sndr_db: f64,
) -> f64 {
    (sndr_db - 1.76) / 6.02 // VIOLATION: multi-line signature still scanned
}

// lint:allow(must-use) — side-effecting accumulator returns a running total
pub fn rmse_accumulate(acc: f64, e: f64) -> f64 {
    acc + e * e
}

#[must_use]
pub fn thd_percent(h: f64, f: f64) -> f64 {
    100.0 * h / f // clean: annotated
}

pub fn window_len(n: usize) -> usize {
    n / 2 // clean: not a metric, not f64
}
