// Fixture: no-panic violations (only meaningful under a gated crate path).

pub fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap() // VIOLATION line 4
}

pub fn expects(x: Option<u32>) -> u32 {
    x.expect("present") // VIOLATION line 8
}

pub fn panics() {
    panic!("boom"); // VIOLATION line 12
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // lint:allow(no-panic) — invariant checked by construction above
    x.unwrap()
}

pub fn unwrap_or_is_fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0) // clean: has a fallback
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3); // clean: test code is exempt
    }
}
