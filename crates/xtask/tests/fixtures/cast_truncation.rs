// Fixture: cast-truncation violations (linted under a hot-kernel path).

pub fn bit_reverse(n: usize) -> Vec<u32> {
    debug_assert!(n.is_power_of_two(), "fft sizes are powers of two");
    (0..n).map(|i| i as u32).collect() // VIOLATION line 5
}

pub fn quantize(x: f64) -> f32 {
    debug_assert!(x.is_finite(), "quantizer input finite");
    x as f32 // VIOLATION line 10
}

pub fn suppressed(x: f64) -> i16 {
    x as i16 // lint:allow(cast-truncation) — range clamped by the caller
}

pub fn widening(i: u32, x: f32) -> (usize, f64) {
    (i as usize, f64::from(x)) // clean: widening casts only
}
