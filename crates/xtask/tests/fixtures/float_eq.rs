// Fixture: float-eq violations. Linted under a virtual path inside the
// workspace; never compiled (the walker skips `fixtures/` directories).

pub fn literal_compare(x: f64) -> bool {
    x == 0.0 // VIOLATION line 5
}

pub fn unit_suffix_compare(a_power_w: f64, b_power_w: f64) -> bool {
    a_power_w != b_power_w // VIOLATION line 9
}

pub fn suppressed(x: f64) -> bool {
    x == 1.0 // lint:allow(float-eq) — definitional sentinel check
}

pub fn integer_compare(n: usize) -> bool {
    n == 10 // clean: integers compare exactly
}

pub fn range_is_not_a_float(n: usize) -> usize {
    (0..10).filter(|i| *i != n).count() // clean: `0..10` is a range
}
