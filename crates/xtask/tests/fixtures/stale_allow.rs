// Fixture: stale-allow — escapes that suppress nothing are errors.

// lint:allow(float-eq) — VIOLATION line 3: nothing to suppress below
pub fn integers_only(n: usize) -> bool {
    n == 10
}

pub fn real_escape(x: f64) -> bool {
    x == 0.5 // lint:allow(float-eq) — clean: this escape earns its keep
}

// The escape syntax is documented as lint:allow(rule-id); an unknown rule
// name like that placeholder is ignored rather than counted as stale.
