// Fixture: ambient-time violations (linted under a library crate path).

pub fn stamp() -> u64 {
    let t = Instant::now(); // VIOLATION line 4
    t.elapsed().as_nanos() as u64
}

pub fn wall_secs() -> u64 {
    let now = SystemTime::now(); // VIOLATION line 9
    now.duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs())
}

pub fn suppressed() -> Instant {
    Instant::now() // lint:allow(ambient-time) — startup banner, not simulation
}

pub fn through_the_clock(reg: &ObsRegistry) -> u64 {
    reg.now_ns() // clean: pluggable clock
}
