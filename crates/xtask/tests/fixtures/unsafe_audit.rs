// Fixture: unsafe-audit and static-mut violations. Never compiled (the
// workspace denies unsafe_code); the linter only ever sees it as tokens.

pub fn raw_read(p: *const u8) -> u8 {
    unsafe { *p } // VIOLATION line 5
}

static mut GLOBAL_SCRATCH: u64 = 0; // VIOLATION line 8 (static-mut)

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: caller contract guarantees p outlives the call and is aligned
    unsafe { *p } // clean: SAFETY comment within three lines
}

pub fn suppressed(p: *const u8) -> u8 {
    unsafe { *p } // lint:allow(unsafe-audit) — audited in review
}
