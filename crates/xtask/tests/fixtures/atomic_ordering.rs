// Fixture: atomic-ordering violations (Relaxed on non-counter atomics).

pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Relaxed); // VIOLATION line 4
}

pub fn state_machine(phase: &AtomicU8) -> u8 {
    phase.load(Ordering::Relaxed) // VIOLATION line 8
}

pub fn justified(ready: &AtomicBool) {
    // relaxed: advisory flag; a stale read only delays one poll cycle
    ready.store(true, Ordering::Relaxed); // clean: justified above
}

pub fn suppressed(gate: &AtomicBool) {
    gate.store(true, Ordering::Relaxed); // lint:allow(atomic-ordering)
}

pub fn counters(hits: &AtomicU64, evaluation_count: &AtomicU64) {
    hits.fetch_add(1, Ordering::Relaxed); // clean: monotonic counter
    evaluation_count.fetch_add(1, Ordering::Relaxed); // clean: counter name
}
