// Fixture: a hot kernel with no finiteness guard (linted under
// crates/cs/src/recon.rs) — triggers finite-guard at line 1.

pub fn omp(y: &[f64]) -> Vec<f64> {
    y.iter().map(|v| v * 2.0).collect()
}
