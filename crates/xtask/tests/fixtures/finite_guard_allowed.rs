// Fixture: a hot kernel opting out of finite-guard file-wide.
// lint:allow(finite-guard) — kernel validates inputs at the API boundary

pub fn omp(y: &[f64]) -> Vec<f64> {
    y.iter().map(|v| v * 2.0).collect()
}
