//! End-to-end tests of the lint engine over fixture files.
//!
//! Each fixture under `tests/fixtures/` seeds violations for one rule plus a
//! `lint:allow` suppression and some near-miss clean code. Fixtures are fed
//! through [`xtask::lint_source`] under *virtual* workspace paths, because
//! rule scoping (gated crates, hot-kernel lists) keys off the path. The
//! workspace walker skips `fixtures/` directories, so these files are never
//! linted as real sources, and cargo never compiles them.

use xtask::lint_source;
use xtask::rules::Diagnostic;

fn lines_for(diags: &[Diagnostic], rule: &str) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn float_eq_fixture() {
    let diags = lint_source(
        "crates/dsp/src/fake.rs",
        include_str!("fixtures/float_eq.rs"),
    );
    assert_eq!(lines_for(&diags, "float-eq"), vec![5, 9], "{diags:?}");
}

#[test]
fn float_eq_fixture_not_flagged_outside_scope_never_happens() {
    // float-eq is workspace-wide: the same fixture trips it under any path.
    let diags = lint_source("examples/fake.rs", include_str!("fixtures/float_eq.rs"));
    assert_eq!(lines_for(&diags, "float-eq"), vec![5, 9]);
}

#[test]
fn no_panic_fixture() {
    let src = include_str!("fixtures/no_panic.rs");
    let diags = lint_source("crates/core/src/fake.rs", src);
    assert_eq!(lines_for(&diags, "no-panic"), vec![4, 8, 12], "{diags:?}");
    // Outside the gated crates the same code is accepted.
    let outside = lint_source("crates/signals/src/fake.rs", src);
    assert!(lines_for(&outside, "no-panic").is_empty());
}

#[test]
fn unit_newtype_fixture() {
    let src = include_str!("fixtures/unit_newtype.rs");
    let diags = lint_source("crates/power/src/fake.rs", src);
    assert_eq!(lines_for(&diags, "unit-newtype"), vec![3, 7], "{diags:?}");
    // The rule is scoped to the power crate.
    let outside = lint_source("crates/dsp/src/fake.rs", src);
    assert!(lines_for(&outside, "unit-newtype").is_empty());
}

#[test]
fn must_use_fixture() {
    let src = include_str!("fixtures/must_use.rs");
    let diags = lint_source("crates/dsp/src/metrics.rs", src);
    assert_eq!(lines_for(&diags, "must-use"), vec![3, 7], "{diags:?}");
    // Scoped: other dsp modules are not covered.
    let outside = lint_source("crates/dsp/src/fft.rs", src);
    assert!(lines_for(&outside, "must-use").is_empty());
}

#[test]
fn seeded_rng_fixture() {
    let src = include_str!("fixtures/seeded_rng.rs");
    let diags = lint_source("crates/signals/src/fake.rs", src);
    assert_eq!(lines_for(&diags, "seeded-rng"), vec![4, 9, 14], "{diags:?}");
    // The bench crate may use ambient entropy.
    let bench = lint_source("crates/bench/src/fake.rs", src);
    assert!(lines_for(&bench, "seeded-rng").is_empty());
}

#[test]
fn finite_guard_fixture() {
    let bad = include_str!("fixtures/finite_guard_bad.rs");
    let diags = lint_source("crates/cs/src/recon.rs", bad);
    assert_eq!(lines_for(&diags, "finite-guard"), vec![1], "{diags:?}");
    // The same file under a non-kernel path carries no requirement.
    let elsewhere = lint_source("crates/cs/src/matrix.rs", bad);
    assert!(lines_for(&elsewhere, "finite-guard").is_empty());

    let ok = include_str!("fixtures/finite_guard_ok.rs");
    let diags = lint_source("crates/cs/src/recon.rs", ok);
    assert!(lines_for(&diags, "finite-guard").is_empty(), "{diags:?}");

    let allowed = include_str!("fixtures/finite_guard_allowed.rs");
    let diags = lint_source("crates/dsp/src/fft.rs", allowed);
    assert!(lines_for(&diags, "finite-guard").is_empty(), "{diags:?}");
}

#[test]
fn ambient_time_fixture() {
    let src = include_str!("fixtures/ambient_time.rs");
    let diags = lint_source("crates/core/src/fake.rs", src);
    assert_eq!(lines_for(&diags, "ambient-time"), vec![4, 9], "{diags:?}");
    // The pluggable clock implementations and the bench crate are exempt.
    assert!(lines_for(&lint_source("crates/obs/src/clock.rs", src), "ambient-time").is_empty());
    assert!(lines_for(
        &lint_source("crates/bench/src/fake.rs", src),
        "ambient-time"
    )
    .is_empty());
}

#[test]
fn unordered_iter_fixture() {
    let src = include_str!("fixtures/unordered_iter.rs");
    let diags = lint_source("crates/core/src/fake.rs", src);
    assert_eq!(
        lines_for(&diags, "unordered-iter"),
        vec![6, 10],
        "{diags:?}"
    );
}

#[test]
fn atomic_ordering_fixture() {
    let src = include_str!("fixtures/atomic_ordering.rs");
    let diags = lint_source("crates/obs/src/fake.rs", src);
    assert_eq!(
        lines_for(&diags, "atomic-ordering"),
        vec![4, 8],
        "{diags:?}"
    );
}

#[test]
fn unsafe_audit_fixture() {
    let src = include_str!("fixtures/unsafe_audit.rs");
    // unsafe-audit and static-mut run workspace-wide, not just lib crates.
    let diags = lint_source("crates/bench/src/fake.rs", src);
    assert_eq!(lines_for(&diags, "unsafe-audit"), vec![5], "{diags:?}");
    assert_eq!(lines_for(&diags, "static-mut"), vec![8], "{diags:?}");
}

#[test]
fn cast_truncation_fixture() {
    let src = include_str!("fixtures/cast_truncation.rs");
    let diags = lint_source("crates/dsp/src/fft.rs", src);
    assert_eq!(
        lines_for(&diags, "cast-truncation"),
        vec![5, 10],
        "{diags:?}"
    );
    // The rule only bites inside the hot-kernel file list.
    let outside = lint_source("crates/dsp/src/window.rs", src);
    assert!(lines_for(&outside, "cast-truncation").is_empty());
}

#[test]
fn stale_allow_fixture() {
    let src = include_str!("fixtures/stale_allow.rs");
    let diags = lint_source("crates/core/src/fake.rs", src);
    assert_eq!(lines_for(&diags, "stale-allow"), vec![3], "{diags:?}");
    // The used escape and the unknown-rule placeholder produce nothing else.
    assert_eq!(diags.len(), 1, "{diags:?}");
}

#[test]
fn every_rule_id_is_exercised_by_a_fixture() {
    // Guards against a rule being added without fixture coverage: collect
    // the rule ids seen across all fixtures and compare to the catalogue
    // (minus `suppression-budget`, which fires from the workspace-level
    // escape census rather than any single file).
    let mut seen: Vec<&str> = Vec::new();
    let runs = [
        (
            "crates/dsp/src/fake.rs",
            include_str!("fixtures/float_eq.rs"),
        ),
        (
            "crates/core/src/fake.rs",
            include_str!("fixtures/no_panic.rs"),
        ),
        (
            "crates/power/src/fake.rs",
            include_str!("fixtures/unit_newtype.rs"),
        ),
        (
            "crates/dsp/src/metrics.rs",
            include_str!("fixtures/must_use.rs"),
        ),
        (
            "crates/signals/src/fake.rs",
            include_str!("fixtures/seeded_rng.rs"),
        ),
        (
            "crates/cs/src/recon.rs",
            include_str!("fixtures/finite_guard_bad.rs"),
        ),
        (
            "crates/core/src/fake.rs",
            include_str!("fixtures/ambient_time.rs"),
        ),
        (
            "crates/core/src/fake.rs",
            include_str!("fixtures/unordered_iter.rs"),
        ),
        (
            "crates/obs/src/fake.rs",
            include_str!("fixtures/atomic_ordering.rs"),
        ),
        (
            "crates/bench/src/fake.rs",
            include_str!("fixtures/unsafe_audit.rs"),
        ),
        (
            "crates/dsp/src/fft.rs",
            include_str!("fixtures/cast_truncation.rs"),
        ),
        (
            "crates/core/src/fake.rs",
            include_str!("fixtures/stale_allow.rs"),
        ),
    ];
    for (path, src) in runs {
        for d in lint_source(path, src) {
            if !seen.contains(&d.rule) {
                seen.push(d.rule);
            }
        }
    }
    seen.sort_unstable();
    let mut expected: Vec<&str> = xtask::rules::RULES
        .iter()
        .map(|r| r.id)
        .filter(|id| *id != "suppression-budget")
        .collect();
    expected.sort_unstable();
    assert_eq!(seen, expected);
}

#[test]
fn diagnostics_format_as_file_line_rule_message() {
    let diags = lint_source(
        "crates/dsp/src/fake.rs",
        "fn f(x: f64) -> bool { x == 0.0 }\n",
    );
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/dsp/src/fake.rs:1: float-eq: "),
        "unexpected rendering: {rendered}"
    );
}

#[test]
fn real_workspace_is_lint_clean() {
    // CARGO_MANIFEST_DIR is crates/xtask; the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let diags = xtask::lint_workspace(root).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
