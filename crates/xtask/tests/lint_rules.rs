//! End-to-end tests of the lint engine over fixture files.
//!
//! Each fixture under `tests/fixtures/` seeds violations for one rule plus a
//! `lint:allow` suppression and some near-miss clean code. Fixtures are fed
//! through [`xtask::lint_source`] under *virtual* workspace paths, because
//! rule scoping (gated crates, hot-kernel lists) keys off the path. The
//! workspace walker skips `fixtures/` directories, so these files are never
//! linted as real sources, and cargo never compiles them.

use xtask::lint_source;
use xtask::rules::Diagnostic;

fn lines_for(diags: &[Diagnostic], rule: &str) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn float_eq_fixture() {
    let diags = lint_source(
        "crates/dsp/src/fake.rs",
        include_str!("fixtures/float_eq.rs"),
    );
    assert_eq!(lines_for(&diags, "float-eq"), vec![5, 9], "{diags:?}");
}

#[test]
fn float_eq_fixture_not_flagged_outside_scope_never_happens() {
    // float-eq is workspace-wide: the same fixture trips it under any path.
    let diags = lint_source("examples/fake.rs", include_str!("fixtures/float_eq.rs"));
    assert_eq!(lines_for(&diags, "float-eq"), vec![5, 9]);
}

#[test]
fn no_panic_fixture() {
    let src = include_str!("fixtures/no_panic.rs");
    let diags = lint_source("crates/core/src/fake.rs", src);
    assert_eq!(lines_for(&diags, "no-panic"), vec![4, 8, 12], "{diags:?}");
    // Outside the gated crates the same code is accepted.
    let outside = lint_source("crates/signals/src/fake.rs", src);
    assert!(lines_for(&outside, "no-panic").is_empty());
}

#[test]
fn unit_newtype_fixture() {
    let src = include_str!("fixtures/unit_newtype.rs");
    let diags = lint_source("crates/power/src/fake.rs", src);
    assert_eq!(lines_for(&diags, "unit-newtype"), vec![3, 7], "{diags:?}");
    // The rule is scoped to the power crate.
    let outside = lint_source("crates/dsp/src/fake.rs", src);
    assert!(lines_for(&outside, "unit-newtype").is_empty());
}

#[test]
fn must_use_fixture() {
    let src = include_str!("fixtures/must_use.rs");
    let diags = lint_source("crates/dsp/src/metrics.rs", src);
    assert_eq!(lines_for(&diags, "must-use"), vec![3, 7], "{diags:?}");
    // Scoped: other dsp modules are not covered.
    let outside = lint_source("crates/dsp/src/fft.rs", src);
    assert!(lines_for(&outside, "must-use").is_empty());
}

#[test]
fn seeded_rng_fixture() {
    let src = include_str!("fixtures/seeded_rng.rs");
    let diags = lint_source("crates/signals/src/fake.rs", src);
    assert_eq!(lines_for(&diags, "seeded-rng"), vec![4, 9, 14], "{diags:?}");
    // The bench crate may use ambient entropy.
    let bench = lint_source("crates/bench/src/fake.rs", src);
    assert!(lines_for(&bench, "seeded-rng").is_empty());
}

#[test]
fn finite_guard_fixture() {
    let bad = include_str!("fixtures/finite_guard_bad.rs");
    let diags = lint_source("crates/cs/src/recon.rs", bad);
    assert_eq!(lines_for(&diags, "finite-guard"), vec![1], "{diags:?}");
    // The same file under a non-kernel path carries no requirement.
    let elsewhere = lint_source("crates/cs/src/matrix.rs", bad);
    assert!(lines_for(&elsewhere, "finite-guard").is_empty());

    let ok = include_str!("fixtures/finite_guard_ok.rs");
    let diags = lint_source("crates/cs/src/recon.rs", ok);
    assert!(lines_for(&diags, "finite-guard").is_empty(), "{diags:?}");

    let allowed = include_str!("fixtures/finite_guard_allowed.rs");
    let diags = lint_source("crates/dsp/src/fft.rs", allowed);
    assert!(lines_for(&diags, "finite-guard").is_empty(), "{diags:?}");
}

#[test]
fn every_rule_id_is_exercised_by_a_fixture() {
    // Guards against a rule being added without fixture coverage: collect
    // the rule ids seen across all fixtures and compare to the catalogue.
    let mut seen: Vec<&str> = Vec::new();
    let runs = [
        (
            "crates/dsp/src/fake.rs",
            include_str!("fixtures/float_eq.rs"),
        ),
        (
            "crates/core/src/fake.rs",
            include_str!("fixtures/no_panic.rs"),
        ),
        (
            "crates/power/src/fake.rs",
            include_str!("fixtures/unit_newtype.rs"),
        ),
        (
            "crates/dsp/src/metrics.rs",
            include_str!("fixtures/must_use.rs"),
        ),
        (
            "crates/signals/src/fake.rs",
            include_str!("fixtures/seeded_rng.rs"),
        ),
        (
            "crates/cs/src/recon.rs",
            include_str!("fixtures/finite_guard_bad.rs"),
        ),
    ];
    for (path, src) in runs {
        for d in lint_source(path, src) {
            if !seen.contains(&d.rule) {
                seen.push(d.rule);
            }
        }
    }
    seen.sort_unstable();
    assert_eq!(
        seen,
        vec![
            "finite-guard",
            "float-eq",
            "must-use",
            "no-panic",
            "seeded-rng",
            "unit-newtype"
        ]
    );
}

#[test]
fn diagnostics_format_as_file_line_rule_message() {
    let diags = lint_source(
        "crates/dsp/src/fake.rs",
        "fn f(x: f64) -> bool { x == 0.0 }\n",
    );
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/dsp/src/fake.rs:1: float-eq: "),
        "unexpected rendering: {rendered}"
    );
}

#[test]
fn real_workspace_is_lint_clean() {
    // CARGO_MANIFEST_DIR is crates/xtask; the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let diags = xtask::lint_workspace(root).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
