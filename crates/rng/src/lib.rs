//! # efficsense-rng
//!
//! Seeded, reproducible pseudo-random numbers for the EffiCSense workspace.
//!
//! Every stochastic component of the framework — sensing matrices, synthetic
//! EEG/ECG records, classifier initialisation, Monte-Carlo property tests —
//! must be reproducible from an explicit `u64` seed so that sweeps, paper
//! figures and CI runs are bit-identical across machines. This crate is the
//! single source of randomness: a std-only xoshiro256++ generator seeded
//! through SplitMix64, plus the handful of derived draws the workspace needs
//! (uniform ranges, ziggurat normals, Fisher–Yates shuffles).
//!
//! By construction there is **no** `thread_rng`/`from_entropy`-style
//! OS-entropy constructor: the only way to obtain a [`Rng64`] is from a seed.
//! `cargo xtask lint` rule `seeded-rng` enforces the same property at the
//! source level for any future dependency.
//!
//! ## Example
//!
//! ```
//! use efficsense_rng::Rng64;
//! let mut a = Rng64::new(42);
//! let mut b = Rng64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let u = a.uniform(-1.0, 1.0);
//! assert!((-1.0..1.0).contains(&u));
//! ```
#![deny(missing_docs)]
#![deny(unsafe_code)]

/// A seeded xoshiro256++ pseudo-random number generator.
///
/// xoshiro256++ (Blackman & Vigna, 2019) passes BigCrush, has a 2^256 − 1
/// period and needs only a few xor/rotate/add operations per draw. The
/// 256-bit state is expanded from the `u64` seed with SplitMix64, the
/// initialisation recommended by the authors (it guarantees a non-zero state
/// for every seed, including 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator deterministically from `seed`.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 stream to fill the 256-bit state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53 — the standard double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in the *open* interval `(0, 1)` — safe under `ln()`.
    pub fn open01(&mut self) -> f64 {
        // Offset by half an ulp of the 2^-53 grid so 0 is unreachable.
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad uniform bounds [{lo}, {hi})"
        );
        lo + (hi - lo) * self.f64()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        // Lemire-style widening multiply keeps the bias below 2^-64.
        let r = self.next_u64() as u128;
        ((r * n as u128) >> 64) as usize
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty integer range [{lo}, {hi})");
        lo + self.index(hi - lo)
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// Bernoulli draw: `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A standard-normal draw via the Marsaglia–Tsang ziggurat (128 layers).
    ///
    /// The common case (≈98.9% of draws) consumes one raw `u64` and performs
    /// a table lookup, a multiply and a compare — roughly an order of
    /// magnitude cheaper than Box–Muller's `ln`/`sqrt`/`cos` per sample,
    /// which dominated the simulator's analog front end. Edge layers fall
    /// back to an exact rejection test and the `|x| > r` tail uses
    /// Marsaglia's exponential-rejection scheme, so the distribution is
    /// exact, not truncated. Draws stay bit-reproducible per seed, but the
    /// number of raw `u64`s consumed per call varies (rejection sampling).
    pub fn normal(&mut self) -> f64 {
        let t = zig_tables();
        loop {
            let z = self.next_u64();
            let i = (z & 0x7F) as usize;
            // Uniform in [-1, 1) from the top 53 bits; the low 7 bits pick
            // the layer, so the two are independent.
            let u = 2.0 * ((z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) - 1.0;
            let x = u * t.x[i];
            if x.abs() < t.x[i + 1] {
                return x; // strictly inside the layer: accept immediately
            }
            if i == 0 {
                // Base layer overflow: sample the analytic tail beyond r.
                loop {
                    let xt = -self.open01().ln() * (1.0 / ZIG_R);
                    let yt = -self.open01().ln();
                    if yt + yt >= xt * xt {
                        return if u < 0.0 { -(ZIG_R + xt) } else { ZIG_R + xt };
                    }
                }
            }
            // Wedge between the layer boundary and the density curve.
            if t.y[i + 1] + (t.y[i] - t.y[i + 1]) * self.f64() < (-0.5 * x * x).exp() {
                return x;
            }
        }
    }

    /// Fisher–Yates shuffle of `xs` in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

/// Number of ziggurat layers; the layer index consumes the low 7 bits of a
/// raw draw.
const ZIG_N: usize = 128;
/// Rightmost layer edge `r` for the 128-layer standard-normal ziggurat.
const ZIG_R: f64 = 3.442_619_855_899;
/// Common layer area `v` for the 128-layer standard-normal ziggurat.
const ZIG_V: f64 = 9.912_563_035_262_17e-3;

/// Precomputed layer edges `x[i]` (decreasing) and densities `y[i] =
/// exp(-x[i]²/2)` for [`Rng64::normal`]. `x[0]` is the *virtual* width of the
/// base layer (area `v` includes the tail), `x[ZIG_N] = 0` caps the top.
struct ZigTables {
    x: [f64; ZIG_N + 1],
    y: [f64; ZIG_N + 1],
}

fn zig_tables() -> &'static ZigTables {
    static TABLES: std::sync::OnceLock<ZigTables> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let f = |x: f64| (-0.5 * x * x).exp();
        let mut x = [0.0; ZIG_N + 1];
        let mut y = [0.0; ZIG_N + 1];
        x[0] = ZIG_V / f(ZIG_R);
        y[0] = 1.0; // layer 0 never runs the wedge test (tail instead)
        x[1] = ZIG_R;
        y[1] = f(ZIG_R);
        // Each layer has area v: f(x[i]) = f(x[i-1]) + v/x[i-1].
        for i in 2..ZIG_N {
            let fy = y[i - 1] + ZIG_V / x[i - 1];
            x[i] = (-2.0 * fy.ln()).sqrt();
            y[i] = fy;
        }
        x[ZIG_N] = 0.0;
        y[ZIG_N] = 1.0;
        ZigTables { x, y }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(8);
        assert_ne!(Rng64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut g = Rng64::new(0);
        let draws: Vec<u64> = (0..8).map(|_| g.next_u64()).collect();
        assert!(
            draws.iter().any(|&d| d != 0),
            "state must not collapse for seed 0"
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = Rng64::new(1);
        for _ in 0..10_000 {
            let v = g.f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn open01_never_zero() {
        let mut g = Rng64::new(2);
        for _ in 0..10_000 {
            let v = g.open01();
            assert!(v > 0.0 && v < 1.0, "{v}");
        }
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let mut g = Rng64::new(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = g.uniform(-2.0, 6.0);
            assert!((-2.0..6.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn index_is_roughly_uniform() {
        let mut g = Rng64::new(4);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[g.index(10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((8_000..12_000).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut g = Rng64::new(5);
        for _ in 0..10_000 {
            let v = g.range(3, 17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn normal_moments() {
        let mut g = Rng64::new(6);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let v = g.normal();
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_reaches_the_tail_both_sides() {
        // The ziggurat tail path (|x| > r ≈ 3.44) must be reachable and
        // signed; ~5.8e-4 of draws land there, so 100k draws see ~60.
        let mut g = Rng64::new(12);
        let (mut lo, mut hi) = (0.0f64, 0.0f64);
        for _ in 0..100_000 {
            let v = g.normal();
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(hi > ZIG_R, "max draw {hi} never escaped the layers");
        assert!(lo < -ZIG_R, "min draw {lo} never escaped the layers");
    }

    #[test]
    fn normal_tail_mass_matches_the_gaussian() {
        // P(|X| > 2) = 2Φ(-2) ≈ 0.0455 — a wedge/tail bookkeeping error
        // (e.g. a mis-built table) would skew this immediately.
        let mut g = Rng64::new(13);
        let n = 200_000;
        let beyond = (0..n).filter(|_| g.normal().abs() > 2.0).count();
        let frac = beyond as f64 / n as f64;
        assert!((frac - 0.0455).abs() < 0.004, "P(|X|>2) ≈ {frac}");
    }

    #[test]
    fn flip_is_fair() {
        let mut g = Rng64::new(9);
        let heads = (0..100_000).filter(|_| g.flip()).count();
        assert!((48_000..52_000).contains(&heads), "{heads}");
    }

    #[test]
    fn chance_frequency() {
        let mut g = Rng64::new(10);
        let hits = (0..100_000).filter(|_| g.chance(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Rng64::new(11);
        let mut xs: Vec<usize> = (0..100).collect();
        g.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "100 elements should not shuffle to identity"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_rejects_zero() {
        let _ = Rng64::new(0).index(0);
    }
}
