//! Lossy radio link with bounded retransmission and bit accounting.
//!
//! The transmitter groups data words into fixed-size packets; each packet
//! is lost independently with `loss_prob` per attempt and retried up to
//! `max_retries` times. Every attempt costs transmission energy, so a lossy
//! link degrades *both* sides of the paper's trade-off at once: undelivered
//! packets erase signal (quality drops) while retransmissions inflate the
//! bit count (power rises).

use efficsense_rng::Rng64;

/// Packet-loss fault on the transmitter link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Probability that one transmission attempt of a packet is lost.
    pub loss_prob: f64,
    /// Retransmission attempts after the first (0 = no retries).
    pub max_retries: u32,
    /// Data words per packet.
    pub packet_words: usize,
}

impl LinkFault {
    /// `true` when the fault has no effect on the signal path.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.loss_prob <= 0.0
    }

    /// Expected transmission attempts per packet under the bounded-retry
    /// policy: `(1 − p^(R+1)) / (1 − p)` for loss probability `p` and `R`
    /// retries. Used by the analytic transmitter power model.
    #[must_use]
    pub fn expected_attempts(&self) -> f64 {
        let p = self.loss_prob.clamp(0.0, 1.0);
        let tries = self.max_retries as i32 + 1;
        if p >= 1.0 {
            // Every attempt fails; the budget is always exhausted.
            return tries as f64;
        }
        (1.0 - p.powi(tries)) / (1.0 - p)
    }

    /// Simulates the link over `n_words` data words. Returns one delivered
    /// flag per word (packet-granular) and the attempt accounting.
    ///
    /// Deterministic in `rng`: exactly one draw per transmission attempt.
    #[must_use]
    pub fn apply(&self, n_words: usize, rng: &mut Rng64) -> (Vec<bool>, LinkStats) {
        let p = self.loss_prob.clamp(0.0, 1.0);
        let pkt = self.packet_words.max(1);
        let mut delivered = vec![true; n_words];
        let mut stats = LinkStats {
            data_words: n_words as u64,
            ..LinkStats::default()
        };
        let mut start = 0usize;
        while start < n_words {
            let len = pkt.min(n_words - start);
            stats.packets += 1;
            let mut attempts = 0u64;
            let mut ok = false;
            while attempts <= self.max_retries as u64 {
                attempts += 1;
                if !rng.chance(p) {
                    ok = true;
                    break;
                }
            }
            stats.tx_words += attempts * len as u64;
            if !ok {
                stats.lost_packets += 1;
                for d in &mut delivered[start..start + len] {
                    *d = false;
                }
            }
            start += len;
        }
        (delivered, stats)
    }
}

/// Accounting of one simulated link session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Data words the front-end produced.
    pub data_words: u64,
    /// Packets formed from those words.
    pub packets: u64,
    /// Packets undelivered after exhausting the retry budget.
    pub lost_packets: u64,
    /// Words actually clocked out of the radio (retransmissions included).
    pub tx_words: u64,
}

impl LinkStats {
    /// Folds another session's accounting into this one.
    pub fn accumulate(&mut self, other: &LinkStats) {
        self.data_words += other.data_words;
        self.packets += other.packets;
        self.lost_packets += other.lost_packets;
        self.tx_words += other.tx_words;
    }

    /// Fraction of packets delivered (1.0 for an empty session).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets == 0 {
            1.0
        } else {
            1.0 - self.lost_packets as f64 / self.packets as f64
        }
    }

    /// Measured attempts-per-data-word inflation (1.0 for an empty session).
    #[must_use]
    pub fn retry_factor(&self) -> f64 {
        if self.data_words == 0 {
            1.0
        } else {
            self.tx_words as f64 / self.data_words as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(p: f64, retries: u32) -> LinkFault {
        LinkFault {
            loss_prob: p,
            max_retries: retries,
            packet_words: 8,
        }
    }

    #[test]
    fn lossless_link_delivers_everything_with_one_attempt_each() {
        let mut rng = Rng64::new(1);
        let (delivered, stats) = fault(0.0, 3).apply(100, &mut rng);
        assert!(delivered.iter().all(|&d| d));
        assert_eq!(stats.lost_packets, 0);
        assert_eq!(stats.tx_words, 100);
        assert_eq!(stats.packets, 13); // ceil(100 / 8)
        assert!((stats.retry_factor() - 1.0).abs() < 1e-12);
        assert!((stats.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_loss_erases_everything_and_burns_the_retry_budget() {
        let mut rng = Rng64::new(2);
        let f = fault(1.0, 2);
        let (delivered, stats) = f.apply(64, &mut rng);
        assert!(delivered.iter().all(|&d| !d));
        assert_eq!(stats.lost_packets, stats.packets);
        assert_eq!(stats.tx_words, 3 * 64); // 3 attempts per packet
        assert!((f.expected_attempts() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn expected_attempts_matches_measured_rate() {
        let f = fault(0.5, 3);
        let mut rng = Rng64::new(3);
        let (_, stats) = f.apply(80_000, &mut rng);
        let measured = stats.tx_words as f64 / stats.data_words as f64;
        assert!(
            (measured / f.expected_attempts() - 1.0).abs() < 0.05,
            "measured {measured} vs expected {}",
            f.expected_attempts()
        );
    }

    #[test]
    fn loss_rate_matches_residual_probability() {
        // P(lost) = p^(R+1) = 0.5^3 = 0.125.
        let f = fault(0.5, 2);
        let mut rng = Rng64::new(4);
        let (_, stats) = f.apply(80_000, &mut rng);
        let rate = stats.lost_packets as f64 / stats.packets as f64;
        assert!((rate - 0.125).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn deterministic_per_seed() {
        let f = fault(0.3, 1);
        let (d1, s1) = f.apply(500, &mut Rng64::new(9));
        let (d2, s2) = f.apply(500, &mut Rng64::new(9));
        assert_eq!(d1, d2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn erasures_are_packet_granular() {
        let f = LinkFault {
            loss_prob: 0.6,
            max_retries: 0,
            packet_words: 10,
        };
        let mut rng = Rng64::new(11);
        let (delivered, _) = f.apply(100, &mut rng);
        for pkt in delivered.chunks(10) {
            assert!(
                pkt.iter().all(|&d| d) || pkt.iter().all(|&d| !d),
                "whole packets live or die together"
            );
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut a = LinkStats {
            data_words: 10,
            packets: 2,
            lost_packets: 1,
            tx_words: 15,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.data_words, 20);
        assert_eq!(a.lost_packets, 2);
        assert_eq!(a.tx_words, 30);
        assert!((a.delivery_ratio() - 0.5).abs() < 1e-12);
        assert!((a.retry_factor() - 1.5).abs() < 1e-12);
    }
}
