//! Compound fault plans with time-varying severity.
//!
//! A [`FaultPlan`] is a static snapshot: every fault is parameterised once
//! and stays fixed for the whole record. Long-duration streams need more —
//! a device that runs for months sees its hold caps leak *progressively*,
//! its clock drift *periodically*, and several degradations at once. A
//! [`CompoundPlan`] describes that scenario declaratively: a set of
//! simultaneous [`FaultKind`]s, each with its own [`SeverityProfile`]
//! evaluated against stream time.
//!
//! Two invariants make compound plans reproducible:
//!
//! 1. **Private RNG streams per fault.** Materialised plans inherit the
//!    compound seed, and every block derives its fault stream via
//!    [`FaultPlan::stream`] with a block-specific salt — so adding one
//!    fault to a compound plan never perturbs the realisation of another.
//! 2. **Epoch-grid severity.** Severity is piecewise-constant over epochs
//!    of [`CompoundPlan::update_period_s`] stream seconds. Blocks snap
//!    their parameter updates to epoch boundaries computed from *absolute*
//!    sample indices, so the realisation is invariant to how the stream is
//!    chunked.

use crate::link::LinkFault;
use crate::plan::{ClockFault, FaultKind, FaultPlan};

/// How one fault's severity evolves over stream time. All shapes produce a
/// normalised severity in `[0, 1]` (the [`FaultPlan::single`] axis); values
/// outside that range are clamped and non-finite evaluations collapse to 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeverityProfile {
    /// Fixed severity for the whole stream.
    Constant(f64),
    /// Linear aging: ramps from `start` to `end` over the first `ramp_s`
    /// seconds, then holds `end`. A non-positive `ramp_s` holds `end`
    /// from t = 0.
    Linear {
        /// Severity at stream time 0.
        start: f64,
        /// Severity reached at `ramp_s` and held afterwards.
        end: f64,
        /// Ramp duration in stream seconds.
        ramp_s: f64,
    },
    /// Step onset: `before` until `at_s`, `after` from then on.
    Step {
        /// Severity before the onset instant.
        before: f64,
        /// Severity at and after the onset instant.
        after: f64,
        /// Onset instant in stream seconds.
        at_s: f64,
    },
    /// Sinusoidal drift around a base level, e.g. diurnal temperature
    /// cycles modulating leakage. A non-positive `period_s` holds `base`.
    Sinusoid {
        /// Centre severity.
        base: f64,
        /// Peak deviation from `base`.
        amplitude: f64,
        /// Oscillation period in stream seconds.
        period_s: f64,
    },
}

impl SeverityProfile {
    /// Severity at stream time `t_s` seconds, clamped to `[0, 1]`
    /// (non-finite evaluations collapse to 0).
    #[must_use]
    pub fn severity_at(&self, t_s: f64) -> f64 {
        let raw = match *self {
            SeverityProfile::Constant(s) => s,
            SeverityProfile::Linear { start, end, ramp_s } => {
                if ramp_s <= 0.0 {
                    end
                } else {
                    let frac = (t_s / ramp_s).clamp(0.0, 1.0);
                    start + (end - start) * frac
                }
            }
            SeverityProfile::Step {
                before,
                after,
                at_s,
            } => {
                if t_s < at_s {
                    before
                } else {
                    after
                }
            }
            SeverityProfile::Sinusoid {
                base,
                amplitude,
                period_s,
            } => {
                if period_s <= 0.0 {
                    base
                } else {
                    base + amplitude * (std::f64::consts::TAU * t_s / period_s).sin()
                }
            }
        };
        if raw.is_finite() {
            raw.clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Upper bound of [`SeverityProfile::severity_at`] over all times —
    /// used to decide whether a fault can ever become active.
    #[must_use]
    pub fn max_severity(&self) -> f64 {
        let raw = match *self {
            SeverityProfile::Constant(s) => s,
            SeverityProfile::Linear { start, end, .. } => start.max(end),
            SeverityProfile::Step { before, after, .. } => before.max(after),
            SeverityProfile::Sinusoid {
                base, amplitude, ..
            } => base + amplitude.abs(),
        };
        if raw.is_finite() {
            raw.clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Canonical text form for cache keys: shape tag plus every parameter
    /// in shortest-round-trip float rendering, so distinct profiles can
    /// never alias.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        match *self {
            SeverityProfile::Constant(s) => format!("const{{s={s:?}}}"),
            SeverityProfile::Linear { start, end, ramp_s } => {
                format!("linear{{start={start:?},end={end:?},ramp_s={ramp_s:?}}}")
            }
            SeverityProfile::Step {
                before,
                after,
                at_s,
            } => {
                format!("step{{before={before:?},after={after:?},at_s={at_s:?}}}")
            }
            SeverityProfile::Sinusoid {
                base,
                amplitude,
                period_s,
            } => {
                format!("sinusoid{{base={base:?},amp={amplitude:?},period_s={period_s:?}}}")
            }
        }
    }
}

/// A set of simultaneous faults, each with its own severity profile,
/// evaluated on a fixed epoch grid in stream time.
///
/// Construction is builder-style and keeps at most one profile per
/// [`FaultKind`], stored in the stable [`FaultKind::ALL`] order so the
/// canonical key is independent of insertion order:
///
/// ```
/// use efficsense_faults::{CompoundPlan, FaultKind, SeverityProfile};
/// let plan = CompoundPlan::new(42, 60.0)
///     .with(FaultKind::CapLeakage, SeverityProfile::Linear { start: 0.0, end: 1.0, ramp_s: 3600.0 })
///     .with(FaultKind::PacketLoss, SeverityProfile::Constant(0.3));
/// assert_eq!(plan.label(), "cap_leakage+packet_loss");
/// assert!(!plan.materialize(3600.0).is_clean());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompoundPlan {
    /// Master fault seed, shared by every materialised snapshot so each
    /// block's private stream (derived by salt) is stable over time.
    pub seed: u64,
    /// Epoch length in stream seconds: severities are re-evaluated only at
    /// multiples of this period, making realisations chunk-invariant.
    pub update_period_s: f64,
    faults: Vec<(FaultKind, SeverityProfile)>,
}

impl CompoundPlan {
    /// An empty compound plan (materialises clean everywhere).
    /// `update_period_s` is clamped to a small positive floor.
    #[must_use]
    pub fn new(seed: u64, update_period_s: f64) -> Self {
        let period = if update_period_s.is_finite() && update_period_s > 0.0 {
            update_period_s
        } else {
            1.0
        };
        Self {
            seed,
            update_period_s: period,
            faults: Vec::new(),
        }
    }

    /// Adds (or replaces) the profile for one fault kind. Profiles are kept
    /// in [`FaultKind::ALL`] order regardless of insertion order.
    #[must_use]
    pub fn with(mut self, kind: FaultKind, profile: SeverityProfile) -> Self {
        self.faults.retain(|(k, _)| *k != kind);
        self.faults.push((kind, profile));
        let order = |k: FaultKind| {
            FaultKind::ALL
                .iter()
                .position(|&a| a == k)
                .unwrap_or(usize::MAX)
        };
        self.faults.sort_by_key(|&(k, _)| order(k));
        self
    }

    /// The fault set in stable order.
    #[must_use]
    pub fn faults(&self) -> &[(FaultKind, SeverityProfile)] {
        &self.faults
    }

    /// `true` when no profile can ever reach a positive severity.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.faults.iter().all(|(_, p)| p.max_severity() <= 0.0)
    }

    /// The epoch index containing stream time `t_s`.
    #[must_use]
    pub fn epoch_index(&self, t_s: f64) -> u64 {
        if !t_s.is_finite() || t_s <= 0.0 {
            return 0;
        }
        let idx = (t_s / self.update_period_s).floor();
        if idx >= u64::MAX as f64 {
            u64::MAX
        } else {
            idx as u64
        }
    }

    /// The stream time at which epoch `epoch` starts.
    #[must_use]
    pub fn epoch_start_s(&self, epoch: u64) -> f64 {
        epoch as f64 * self.update_period_s
    }

    /// Materialises the static [`FaultPlan`] in force during the epoch that
    /// contains `t_s` (severities are evaluated at the epoch start, so every
    /// instant within an epoch sees identical parameters).
    #[must_use]
    pub fn materialize(&self, t_s: f64) -> FaultPlan {
        self.materialize_at_epoch(self.epoch_index(t_s))
    }

    /// Materialises the static [`FaultPlan`] for epoch `epoch`.
    ///
    /// `ClockJitter` and `DroppedSamples` share the chain's single clock
    /// hook; their severities merge into one [`ClockFault`] with each
    /// component taken from its own profile.
    #[must_use]
    pub fn materialize_at_epoch(&self, epoch: u64) -> FaultPlan {
        let t_s = self.epoch_start_s(epoch);
        let mut plan = FaultPlan::clean(self.seed);
        for (kind, profile) in &self.faults {
            let single = FaultPlan::single(*kind, profile.severity_at(t_s), self.seed);
            if let Some(f) = single.lna {
                plan.lna = Some(f);
            }
            if let Some(f) = single.adc {
                plan.adc = Some(f);
            }
            if let Some(f) = single.leakage {
                plan.leakage = Some(f);
            }
            if let Some(c) = single.clock {
                let merged = plan.clock.get_or_insert(ClockFault {
                    jitter_periods: 0.0,
                    drop_prob: 0.0,
                });
                if c.jitter_periods > 0.0 {
                    merged.jitter_periods = c.jitter_periods;
                }
                if c.drop_prob > 0.0 {
                    merged.drop_prob = c.drop_prob;
                }
            }
            if let Some(f) = single.link {
                plan.link = Some(f);
            }
        }
        plan
    }

    /// Canonical content-addressing form. Never-active plans collapse to
    /// `"clean"`; active plans encode seed, epoch period, and every member
    /// kind with its full profile, prefixed so a compound key can never
    /// alias a static [`FaultPlan::canonical_key`].
    #[must_use]
    pub fn canonical_key(&self) -> String {
        let active: Vec<String> = self
            .faults
            .iter()
            .filter(|(_, p)| p.max_severity() > 0.0)
            .map(|(k, p)| format!("{}:{}", k.name(), p.canonical_key()))
            .collect();
        if active.is_empty() {
            "clean".to_string()
        } else {
            format!(
                "compound;seed={};period_s={:?};{}",
                self.seed,
                self.update_period_s,
                active.join(";")
            )
        }
    }

    /// Short stable label of the member kinds that can become active,
    /// e.g. `cap_leakage+packet_loss`, or `clean`.
    #[must_use]
    pub fn label(&self) -> String {
        let parts: Vec<&str> = self
            .faults
            .iter()
            .filter(|(_, p)| p.max_severity() > 0.0)
            .map(|(k, _)| k.name())
            .collect();
        if parts.is_empty() {
            "clean".to_string()
        } else {
            parts.join("+")
        }
    }

    /// Convenience: the link fault in force during the epoch containing
    /// `t_s`, already filtered for no-ops (used by power drift models).
    #[must_use]
    pub fn link_at(&self, t_s: f64) -> Option<LinkFault> {
        self.materialize(t_s).link.filter(|l| !l.is_noop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile_is_flat_and_clamped() {
        let p = SeverityProfile::Constant(0.4);
        assert_eq!(p.severity_at(0.0), 0.4);
        assert_eq!(p.severity_at(1e9), 0.4);
        assert_eq!(SeverityProfile::Constant(2.0).severity_at(5.0), 1.0);
        assert_eq!(SeverityProfile::Constant(-1.0).severity_at(5.0), 0.0);
        assert_eq!(SeverityProfile::Constant(f64::NAN).severity_at(5.0), 0.0);
    }

    #[test]
    fn linear_ramps_then_holds() {
        let p = SeverityProfile::Linear {
            start: 0.0,
            end: 1.0,
            ramp_s: 100.0,
        };
        assert_eq!(p.severity_at(0.0), 0.0);
        assert!((p.severity_at(50.0) - 0.5).abs() < 1e-12);
        assert_eq!(p.severity_at(100.0), 1.0);
        assert_eq!(p.severity_at(1e6), 1.0);
        // Degenerate ramp holds the end value.
        let deg = SeverityProfile::Linear {
            start: 0.2,
            end: 0.8,
            ramp_s: 0.0,
        };
        assert_eq!(deg.severity_at(0.0), 0.8);
    }

    #[test]
    fn step_switches_at_onset() {
        let p = SeverityProfile::Step {
            before: 0.1,
            after: 0.9,
            at_s: 10.0,
        };
        assert_eq!(p.severity_at(9.999), 0.1);
        assert_eq!(p.severity_at(10.0), 0.9);
    }

    #[test]
    fn sinusoid_oscillates_within_clamp() {
        let p = SeverityProfile::Sinusoid {
            base: 0.5,
            amplitude: 0.5,
            period_s: 4.0,
        };
        assert!((p.severity_at(1.0) - 1.0).abs() < 1e-12);
        assert!(p.severity_at(3.0).abs() < 1e-12);
        assert_eq!(p.max_severity(), 1.0);
    }

    #[test]
    fn materialize_is_piecewise_constant_over_epochs() {
        let plan = CompoundPlan::new(7, 10.0).with(
            FaultKind::CapLeakage,
            SeverityProfile::Linear {
                start: 0.0,
                end: 1.0,
                ramp_s: 100.0,
            },
        );
        // Everywhere inside one epoch the snapshot is identical…
        assert_eq!(plan.materialize(10.0), plan.materialize(19.999));
        // …and successive epochs differ while severity ramps.
        assert_ne!(plan.materialize(10.0), plan.materialize(20.0));
        assert_eq!(plan.epoch_index(19.999), 1);
        assert_eq!(plan.epoch_index(20.0), 2);
        assert_eq!(plan.epoch_index(-5.0), 0);
    }

    #[test]
    fn materialize_merges_clock_kinds() {
        let plan = CompoundPlan::new(1, 1.0)
            .with(FaultKind::ClockJitter, SeverityProfile::Constant(0.4))
            .with(FaultKind::DroppedSamples, SeverityProfile::Constant(0.6));
        let snap = plan.materialize(0.0);
        let clock = snap.clock.expect("merged clock fault");
        assert!((clock.jitter_periods - 0.2).abs() < 1e-12);
        assert!((clock.drop_prob - 0.3).abs() < 1e-12);
        assert_eq!(snap.label(), "clock_jitter+dropped_samples");
    }

    #[test]
    fn compound_inherits_single_mappings_and_private_streams() {
        let compound = CompoundPlan::new(9, 1.0)
            .with(FaultKind::LnaRail, SeverityProfile::Constant(0.5))
            .with(FaultKind::PacketLoss, SeverityProfile::Constant(0.5));
        let snap = compound.materialize(0.0);
        let single = FaultPlan::single(FaultKind::LnaRail, 0.5, 9);
        // The LNA fault parameters and their private stream are unchanged by
        // the co-resident packet-loss fault.
        assert_eq!(snap.lna, single.lna);
        assert_eq!(snap.stream(1), single.stream(1));
    }

    #[test]
    fn builder_order_does_not_change_the_plan() {
        let a = CompoundPlan::new(3, 5.0)
            .with(FaultKind::PacketLoss, SeverityProfile::Constant(0.2))
            .with(FaultKind::LnaRail, SeverityProfile::Constant(0.7));
        let b = CompoundPlan::new(3, 5.0)
            .with(FaultKind::LnaRail, SeverityProfile::Constant(0.7))
            .with(FaultKind::PacketLoss, SeverityProfile::Constant(0.2));
        assert_eq!(a, b);
        assert_eq!(a.canonical_key(), b.canonical_key());
        // Re-adding a kind replaces its profile.
        let c = a
            .clone()
            .with(FaultKind::LnaRail, SeverityProfile::Constant(0.1));
        assert_eq!(c.faults().len(), 2);
        assert_ne!(a.canonical_key(), c.canonical_key());
    }

    #[test]
    fn canonical_key_separates_membership_profiles_seed_and_period() {
        let base = CompoundPlan::new(1, 60.0).with(
            FaultKind::CapLeakage,
            SeverityProfile::Linear {
                start: 0.0,
                end: 1.0,
                ramp_s: 3600.0,
            },
        );
        let more = base
            .clone()
            .with(FaultKind::PacketLoss, SeverityProfile::Constant(0.5));
        let other_profile =
            CompoundPlan::new(1, 60.0).with(FaultKind::CapLeakage, SeverityProfile::Constant(1.0));
        let other_seed = CompoundPlan::new(2, 60.0).with(
            FaultKind::CapLeakage,
            SeverityProfile::Linear {
                start: 0.0,
                end: 1.0,
                ramp_s: 3600.0,
            },
        );
        let other_period = CompoundPlan::new(1, 30.0).with(
            FaultKind::CapLeakage,
            SeverityProfile::Linear {
                start: 0.0,
                end: 1.0,
                ramp_s: 3600.0,
            },
        );
        let keys = [
            base.canonical_key(),
            more.canonical_key(),
            other_profile.canonical_key(),
            other_seed.canonical_key(),
            other_period.canonical_key(),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "compound keys must not alias");
            }
        }
    }

    #[test]
    fn never_active_plans_collapse_to_clean() {
        let plan = CompoundPlan::new(5, 60.0)
            .with(FaultKind::LnaRail, SeverityProfile::Constant(0.0))
            .with(
                FaultKind::PacketLoss,
                SeverityProfile::Linear {
                    start: 0.0,
                    end: 0.0,
                    ramp_s: 10.0,
                },
            );
        assert!(plan.is_clean());
        assert_eq!(plan.canonical_key(), "clean");
        assert_eq!(plan.label(), "clean");
        assert!(plan.materialize(1e6).is_clean());
    }

    #[test]
    fn degenerate_update_period_is_clamped() {
        let plan = CompoundPlan::new(0, 0.0);
        assert!(plan.update_period_s > 0.0);
        let nan = CompoundPlan::new(0, f64::NAN);
        assert!(nan.update_period_s > 0.0);
    }

    #[test]
    fn link_at_filters_noops() {
        let plan = CompoundPlan::new(4, 1.0).with(
            FaultKind::PacketLoss,
            SeverityProfile::Step {
                before: 0.0,
                after: 0.8,
                at_s: 100.0,
            },
        );
        assert!(plan.link_at(0.0).is_none());
        assert!(plan.link_at(100.0).is_some());
    }
}
