//! # efficsense-faults
//!
//! Seeded, deterministic fault injection for the EffiCSense chain.
//!
//! The paper's argument is that architectural choices must be judged with
//! analog non-idealities in the loop; this crate extends that loop from
//! *benign* imperfections (noise, mismatch, droop) to *faults*: a railing
//! LNA, a stuck ADC bit, runaway capacitor leakage, a wandering sample
//! clock, a lossy radio link. A [`FaultPlan`] describes which faults are
//! active and how severe they are; the block models accept it behind an
//! `Option` hook so the clean path is untouched, and every stochastic
//! decision derives from the plan's explicit seed so fault runs are
//! bit-reproducible across machines and thread counts.
//!
//! Severity is normalised to `[0, 1]` per fault kind —
//! [`FaultPlan::single`] maps it onto physical parameters calibrated so
//! that 0 is bit-identical to the clean chain and 1 is destructive. The
//! `robustness` bench binary sweeps this axis to produce degradation
//! curves.
//!
//! ```
//! use efficsense_faults::{FaultKind, FaultPlan};
//! let plan = FaultPlan::single(FaultKind::AdcStuckBit, 0.5, 42);
//! assert!(!plan.is_clean());
//! assert!(FaultPlan::single(FaultKind::AdcStuckBit, 0.0, 42).is_clean());
//! ```
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod compound;
pub mod link;
pub mod plan;

pub use compound::{CompoundPlan, SeverityProfile};
pub use link::{LinkFault, LinkStats};
pub use plan::{AdcStuckBitFault, CapLeakageFault, ClockFault, FaultKind, FaultPlan, LnaRailFault};
