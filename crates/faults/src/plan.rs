//! The fault taxonomy and the severity → physical-parameter mapping.

use crate::link::LinkFault;

/// The fault kinds the chain can be subjected to, one per block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// LNA saturation: the output intermittently sticks to a (sagging)
    /// supply rail.
    LnaRail,
    /// One output bit of the SAR ADC stuck high (missing codes appear).
    AdcStuckBit,
    /// Runaway hold-capacitor leakage: held charge droops much faster than
    /// the decoder's leakage-aware model assumes.
    CapLeakage,
    /// Sample-clock aperture jitter.
    ClockJitter,
    /// Sample-clock dropouts: conversions lost, last value held.
    DroppedSamples,
    /// Radio packet loss with bounded retransmission.
    PacketLoss,
}

impl FaultKind {
    /// Every fault kind, in a stable order (used by degradation sweeps).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::LnaRail,
        FaultKind::AdcStuckBit,
        FaultKind::CapLeakage,
        FaultKind::ClockJitter,
        FaultKind::DroppedSamples,
        FaultKind::PacketLoss,
    ];

    /// Short stable name for CSV columns and labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::LnaRail => "lna_rail",
            FaultKind::AdcStuckBit => "adc_stuck_bit",
            FaultKind::CapLeakage => "cap_leakage",
            FaultKind::ClockJitter => "clock_jitter",
            FaultKind::DroppedSamples => "dropped_samples",
            FaultKind::PacketLoss => "packet_loss",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// LNA railing fault: per-sample, with probability `rail_prob`, the output
/// latches to the positive rail for `episode_len` continuous-time samples;
/// the rail itself sags to `v_clip_factor · V_clip`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LnaRailFault {
    /// Probability per continuous-time sample of starting a rail episode.
    pub rail_prob: f64,
    /// Episode length in continuous-time samples.
    pub episode_len: usize,
    /// Clip-level derating in `(0, 1]` (1 = nominal rails).
    pub v_clip_factor: f64,
}

impl LnaRailFault {
    /// `true` when the fault has no effect on the signal path.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        (self.rail_prob <= 0.0 || self.episode_len == 0) && self.v_clip_factor >= 1.0
    }
}

/// One SAR output bit stuck at a fixed level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdcStuckBitFault {
    /// Stuck bit index, LSB = 0. Clamped to `n_bits − 1` by the converter.
    pub bit: u32,
    /// `true`: stuck high; `false`: stuck low.
    pub stuck_high: bool,
}

/// Hold-capacitor leakage inflated beyond the technology figure the
/// decoder's droop model was built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapLeakageFault {
    /// Multiplier on the technology leakage current (≥ 1; 1 = nominal).
    pub leak_multiplier: f64,
}

impl CapLeakageFault {
    /// `true` when the fault has no effect on the signal path.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.leak_multiplier <= 1.0
    }
}

/// Sample-clock faults: aperture jitter and dropped conversions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockFault {
    /// RMS aperture jitter in sample periods (converted to seconds by the
    /// block that owns the clock).
    pub jitter_periods: f64,
    /// Probability that a conversion is dropped (the previous output value
    /// is held in its place).
    pub drop_prob: f64,
}

impl ClockFault {
    /// `true` when the fault has no effect on the signal path.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.jitter_periods <= 0.0 && self.drop_prob <= 0.0
    }
}

/// A deterministic, seeded description of every fault injected into one
/// simulation. `None` fields leave the corresponding block clean.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Master fault seed; per-block streams derive from it via
    /// [`FaultPlan::stream`].
    pub seed: u64,
    /// LNA railing fault.
    pub lna: Option<LnaRailFault>,
    /// ADC stuck-bit fault.
    pub adc: Option<AdcStuckBitFault>,
    /// Charge-sharing hold-cap leakage fault (CS architecture only).
    pub leakage: Option<CapLeakageFault>,
    /// Sample-clock jitter / dropout fault.
    pub clock: Option<ClockFault>,
    /// Transmitter packet-loss fault.
    pub link: Option<LinkFault>,
}

impl FaultPlan {
    /// A plan with no faults (bit-identical to passing no plan at all).
    #[must_use]
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// A plan with exactly one fault kind at normalised `severity ∈ [0, 1]`.
    ///
    /// Severity 0 (or below) returns a clean plan; severity is clamped at 1.
    /// The mapping onto physical parameters is calibrated against the
    /// paper-default design point (Table III) so that 1 is destructive:
    ///
    /// | kind             | severity → parameter                                  |
    /// |------------------|-------------------------------------------------------|
    /// | `LnaRail`        | episode prob `0.01·sev`, 64-sample episodes, rails sag to `1 − 0.5·sev` |
    /// | `AdcStuckBit`    | stuck-high bit `round(7·sev)` (LSB → MSB)             |
    /// | `CapLeakage`     | leakage × `10^(2·sev)`                                |
    /// | `ClockJitter`    | aperture jitter `0.5·sev` sample periods              |
    /// | `DroppedSamples` | drop probability `0.5·sev`                            |
    /// | `PacketLoss`     | packet loss prob `0.9·sev`, 2 retries, 16-word packets |
    #[must_use]
    pub fn single(kind: FaultKind, severity: f64, seed: u64) -> Self {
        let mut plan = Self::clean(seed);
        // NaN and non-positive severities both mean "clean".
        if severity.is_nan() || severity <= 0.0 {
            return plan;
        }
        let sev = severity.min(1.0);
        match kind {
            FaultKind::LnaRail => {
                plan.lna = Some(LnaRailFault {
                    rail_prob: 0.01 * sev,
                    episode_len: 64,
                    v_clip_factor: 1.0 - 0.5 * sev,
                });
            }
            FaultKind::AdcStuckBit => {
                plan.adc = Some(AdcStuckBitFault {
                    bit: (7.0 * sev).round() as u32,
                    stuck_high: true,
                });
            }
            FaultKind::CapLeakage => {
                plan.leakage = Some(CapLeakageFault {
                    leak_multiplier: 10f64.powf(2.0 * sev),
                });
            }
            FaultKind::ClockJitter => {
                plan.clock = Some(ClockFault {
                    jitter_periods: 0.5 * sev,
                    drop_prob: 0.0,
                });
            }
            FaultKind::DroppedSamples => {
                plan.clock = Some(ClockFault {
                    jitter_periods: 0.0,
                    drop_prob: 0.5 * sev,
                });
            }
            FaultKind::PacketLoss => {
                plan.link = Some(LinkFault {
                    loss_prob: 0.9 * sev,
                    max_retries: 2,
                    packet_words: 16,
                });
            }
        }
        plan
    }

    /// `true` when the plan perturbs nothing — every hook is `None` or a
    /// zero-effect parameterisation. Clean plans must leave the simulation
    /// bit-identical to running without a plan.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.lna.as_ref().is_none_or(LnaRailFault::is_noop)
            && self.adc.is_none()
            && self.leakage.as_ref().is_none_or(CapLeakageFault::is_noop)
            && self.clock.as_ref().is_none_or(ClockFault::is_noop)
            && self.link.as_ref().is_none_or(LinkFault::is_noop)
    }

    /// Derived seed for one block's private fault stream. `salt` separates
    /// blocks; mix in a record seed for per-record decorrelation.
    #[must_use]
    pub fn stream(&self, salt: u64) -> u64 {
        // SplitMix64-style finalising mix so neighbouring salts decorrelate.
        let mut z = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Canonical content-addressing form for evaluation caches.
    ///
    /// Clean plans are bit-identical to running with no plan at all (the
    /// simulator drops them), so *every* clean plan — whatever its seed or
    /// noop parameterisation — canonicalises to `"clean"`. Active plans
    /// encode compound membership explicitly: each *active* (non-noop)
    /// fault renders its kind name and full parameter set in shortest
    /// round-trip float form, plus the seed (the seed picks the fault
    /// realisation and therefore the result). Noop members are omitted —
    /// they cannot perturb the simulation, so `Some(noop)` and `None`
    /// must share a key. Time-varying severity lives one level up in
    /// [`crate::CompoundPlan::canonical_key`], whose `compound;`-prefixed
    /// keys can never alias these static `plan;`-prefixed ones.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        if self.is_clean() {
            return "clean".to_string();
        }
        let mut parts: Vec<String> = Vec::new();
        if let Some(f) = self.lna.filter(|f| !f.is_noop()) {
            parts.push(format!(
                "{}{{rail_prob={:?},episode_len={},v_clip_factor={:?}}}",
                FaultKind::LnaRail.name(),
                f.rail_prob,
                f.episode_len,
                f.v_clip_factor
            ));
        }
        if let Some(f) = self.adc {
            parts.push(format!(
                "{}{{bit={},stuck_high={}}}",
                FaultKind::AdcStuckBit.name(),
                f.bit,
                f.stuck_high
            ));
        }
        if let Some(f) = self.leakage.filter(|f| !f.is_noop()) {
            parts.push(format!(
                "{}{{leak_multiplier={:?}}}",
                FaultKind::CapLeakage.name(),
                f.leak_multiplier
            ));
        }
        if let Some(c) = self.clock.filter(|c| !c.is_noop()) {
            parts.push(format!(
                "clock{{jitter_periods={:?},drop_prob={:?}}}",
                c.jitter_periods, c.drop_prob
            ));
        }
        if let Some(l) = self.link.filter(|l| !l.is_noop()) {
            parts.push(format!(
                "{}{{loss_prob={:?},max_retries={},packet_words={}}}",
                FaultKind::PacketLoss.name(),
                l.loss_prob,
                l.max_retries,
                l.packet_words
            ));
        }
        format!("plan;seed={};{}", self.seed, parts.join(";"))
    }

    /// Short stable label of the active fault kinds, e.g.
    /// `lna_rail+packet_loss`, or `clean`.
    #[must_use]
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.lna.as_ref().is_some_and(|f| !f.is_noop()) {
            parts.push(FaultKind::LnaRail.name());
        }
        if self.adc.is_some() {
            parts.push(FaultKind::AdcStuckBit.name());
        }
        if self.leakage.as_ref().is_some_and(|f| !f.is_noop()) {
            parts.push(FaultKind::CapLeakage.name());
        }
        if let Some(c) = &self.clock {
            if c.jitter_periods > 0.0 {
                parts.push(FaultKind::ClockJitter.name());
            }
            if c.drop_prob > 0.0 {
                parts.push(FaultKind::DroppedSamples.name());
            }
        }
        if self.link.as_ref().is_some_and(|f| !f.is_noop()) {
            parts.push(FaultKind::PacketLoss.name());
        }
        if parts.is_empty() {
            "clean".to_string()
        } else {
            parts.join("+")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_severity_is_clean_for_every_kind() {
        for kind in FaultKind::ALL {
            let plan = FaultPlan::single(kind, 0.0, 7);
            assert!(plan.is_clean(), "{kind} at severity 0 must be clean");
            assert_eq!(plan, FaultPlan::clean(7));
            assert_eq!(plan.label(), "clean");
        }
    }

    #[test]
    fn nan_severity_is_clean() {
        assert!(FaultPlan::single(FaultKind::LnaRail, f64::NAN, 0).is_clean());
        assert!(FaultPlan::single(FaultKind::LnaRail, -0.5, 0).is_clean());
    }

    #[test]
    fn positive_severity_activates_exactly_one_kind() {
        for kind in FaultKind::ALL {
            let plan = FaultPlan::single(kind, 0.5, 7);
            assert!(!plan.is_clean(), "{kind} at severity 0.5 must be active");
            assert_eq!(plan.label(), kind.name());
        }
    }

    #[test]
    fn severity_is_clamped_at_one() {
        let p1 = FaultPlan::single(FaultKind::PacketLoss, 1.0, 0);
        let p2 = FaultPlan::single(FaultKind::PacketLoss, 3.0, 0);
        assert_eq!(p1, p2);
    }

    #[test]
    fn severity_mappings_are_monotone() {
        let sevs = [0.1, 0.4, 0.7, 1.0];
        let rail: Vec<f64> = sevs
            .iter()
            .map(|&s| {
                FaultPlan::single(FaultKind::LnaRail, s, 0)
                    .lna
                    .unwrap()
                    .rail_prob
            })
            .collect();
        let leak: Vec<f64> = sevs
            .iter()
            .map(|&s| {
                FaultPlan::single(FaultKind::CapLeakage, s, 0)
                    .leakage
                    .unwrap()
                    .leak_multiplier
            })
            .collect();
        let loss: Vec<f64> = sevs
            .iter()
            .map(|&s| {
                FaultPlan::single(FaultKind::PacketLoss, s, 0)
                    .link
                    .unwrap()
                    .loss_prob
            })
            .collect();
        for series in [rail, leak, loss] {
            for w in series.windows(2) {
                assert!(w[1] > w[0], "severity mapping must increase: {series:?}");
            }
        }
    }

    #[test]
    fn stuck_bit_moves_from_lsb_to_msb() {
        let lo = FaultPlan::single(FaultKind::AdcStuckBit, 0.05, 0)
            .adc
            .unwrap();
        let hi = FaultPlan::single(FaultKind::AdcStuckBit, 1.0, 0)
            .adc
            .unwrap();
        assert_eq!(lo.bit, 0);
        assert_eq!(hi.bit, 7);
    }

    #[test]
    fn streams_differ_by_salt_and_seed() {
        let plan = FaultPlan::clean(123);
        assert_ne!(plan.stream(1), plan.stream(2));
        assert_ne!(plan.stream(1), FaultPlan::clean(124).stream(1));
        assert_eq!(plan.stream(5), FaultPlan::clean(123).stream(5));
    }

    #[test]
    fn canonical_key_collapses_clean_plans_and_separates_active_ones() {
        // Clean plans canonicalise identically regardless of seed or noop
        // parameterisation.
        assert_eq!(FaultPlan::clean(1).canonical_key(), "clean");
        assert_eq!(FaultPlan::clean(2).canonical_key(), "clean");
        assert_eq!(
            FaultPlan::single(FaultKind::LnaRail, 0.0, 9).canonical_key(),
            "clean"
        );
        // Active plans carry kind, severity mapping and seed.
        let a = FaultPlan::single(FaultKind::CapLeakage, 0.5, 1).canonical_key();
        let b = FaultPlan::single(FaultKind::CapLeakage, 0.6, 1).canonical_key();
        let c = FaultPlan::single(FaultKind::CapLeakage, 0.5, 2).canonical_key();
        let d = FaultPlan::single(FaultKind::ClockJitter, 0.5, 1).canonical_key();
        assert_ne!(a, b, "severity must separate keys");
        assert_ne!(a, c, "seed must separate keys");
        assert_ne!(a, d, "kind must separate keys");
        assert_ne!(a, "clean");
    }

    #[test]
    fn combined_label_joins_kinds() {
        let mut plan = FaultPlan::single(FaultKind::LnaRail, 0.5, 0);
        plan.link = FaultPlan::single(FaultKind::PacketLoss, 0.5, 0).link;
        assert_eq!(plan.label(), "lna_rail+packet_loss");
    }
}
