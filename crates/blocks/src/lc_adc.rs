//! Event-driven (level-crossing) ADC — the fixed-rate alternative explored
//! by the authors' own power-comparison study (Van Assche & Gielen, TBioCAS
//! 2020, reference 15 of the paper).
//!
//! A level-crossing converter emits an event whenever the input crosses one
//! of a ladder of levels spaced `LSB` apart: sparse signals produce few
//! events, so data rate (and transmitter power) tracks signal *activity*
//! instead of bandwidth. EffiCSense's library includes it so architectural
//! sweeps can pit event-driven sampling against both the Nyquist baseline
//! and the CS front-end.

use efficsense_power::breakdown::BlockKind;
use efficsense_power::models::PowerModel;
use efficsense_power::Watts;
use efficsense_power::{DesignParams, PowerBreakdown, TechnologyParams};

/// One level-crossing event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LcEvent {
    /// Continuous-time proxy sample index at which the crossing happened.
    pub index: usize,
    /// Level index after the crossing (signed ladder position).
    pub level: i64,
}

/// Behavioural level-crossing ADC.
#[derive(Debug, Clone, PartialEq)]
pub struct LcAdc {
    /// Resolution: level spacing is `v_fs / 2^n_bits`.
    pub n_bits: u32,
    /// Full-scale range (V), bipolar.
    pub v_fs: f64,
    /// Hysteresis as a fraction of one LSB (suppresses noise chatter).
    pub hysteresis_lsb: f64,
    level: i64,
    initialised: bool,
}

impl LcAdc {
    /// Creates a level-crossing converter.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n_bits <= 16`, `v_fs > 0`, `hysteresis_lsb >= 0`.
    pub fn new(n_bits: u32, v_fs: f64, hysteresis_lsb: f64) -> Self {
        assert!(
            (1..=16).contains(&n_bits),
            "resolution {n_bits} out of range"
        );
        assert!(v_fs > 0.0, "full scale must be positive");
        assert!(hysteresis_lsb >= 0.0, "hysteresis must be non-negative");
        Self {
            n_bits,
            v_fs,
            hysteresis_lsb,
            level: 0,
            initialised: false,
        }
    }

    /// Level spacing (V).
    pub fn lsb(&self) -> f64 {
        self.v_fs / (1u64 << self.n_bits) as f64
    }

    /// Converts a record into level-crossing events.
    pub fn convert(&mut self, x: &[f64]) -> Vec<LcEvent> {
        let lsb = self.lsb();
        let hyst = self.hysteresis_lsb * lsb;
        let mut events = Vec::new();
        for (i, &v) in x.iter().enumerate() {
            if !self.initialised {
                self.level = (v / lsb).round() as i64;
                self.initialised = true;
                events.push(LcEvent {
                    index: i,
                    level: self.level,
                });
                continue;
            }
            loop {
                let current = self.level as f64 * lsb;
                if v > current + lsb + hyst {
                    self.level += 1;
                } else if v < current - lsb - hyst {
                    self.level -= 1;
                } else {
                    break;
                }
                events.push(LcEvent {
                    index: i,
                    level: self.level,
                });
            }
        }
        events
    }

    /// Reconstructs a uniformly sampled signal from events by zero-order
    /// hold (the standard LC-ADC decoder before interpolation).
    pub fn reconstruct(&self, events: &[LcEvent], len: usize) -> Vec<f64> {
        let lsb = self.lsb();
        let mut out = vec![0.0; len];
        if events.is_empty() {
            return out;
        }
        let mut e = 0usize;
        let mut current = events[0].level as f64 * lsb;
        for (i, o) in out.iter_mut().enumerate() {
            while e < events.len() && events[e].index <= i {
                current = events[e].level as f64 * lsb;
                e += 1;
            }
            *o = current;
        }
        out
    }

    /// Resets the converter state.
    pub fn reset(&mut self) {
        self.level = 0;
        self.initialised = false;
    }

    /// Power breakdown for a measured `event_rate` (events/s): two
    /// continuously-running comparators (the ladder window) plus per-event
    /// logic and event transmission.
    pub fn power_breakdown(
        &self,
        event_rate_hz: f64,
        tech: &TechnologyParams,
        design: &DesignParams,
    ) -> PowerBreakdown {
        assert!(event_rate_hz >= 0.0, "event rate must be non-negative");
        let mut b = PowerBreakdown::new();
        let comp = LcComparatorModel {
            n_bits: self.n_bits,
        };
        b.add(comp.kind(), comp.power(tech, design));
        // Per-event logic: level counter update (~2N gates).
        let logic = 0.4
            * (2.0 * self.n_bits as f64)
            * tech.c_logic_f
            * design.v_dd
            * design.v_dd
            * event_rate_hz;
        b.add(BlockKind::SarLogic, Watts(logic));
        // Each event ships a timestamp+direction word of ~N bits.
        b.add(
            BlockKind::Transmitter,
            Watts(event_rate_hz * self.n_bits as f64 * tech.e_bit_j),
        );
        b
    }
}

/// Continuous-time window comparators of an LC-ADC: two comparators biased
/// to track the input with bandwidth `BW_LNA`, noise below half a level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcComparatorModel {
    /// Converter resolution (sets the comparator noise requirement).
    pub n_bits: u32,
}

impl PowerModel for LcComparatorModel {
    fn kind(&self) -> BlockKind {
        BlockKind::Comparator
    }

    fn power(&self, tech: &TechnologyParams, design: &DesignParams) -> Watts {
        // Noise requirement: vn <= LSB/4 over the signal bandwidth; use the
        // same NEF current bound as the LNA, times two comparators.
        let lsb = design.v_fs / (1u64 << self.n_bits) as f64;
        let vn = lsb / 4.0;
        let i = (tech.nef / vn).powi(2)
            * 2.0
            * std::f64::consts::PI
            * 4.0
            * efficsense_power::kt()
            * design.bw_lna_hz()
            * tech.v_t;
        Watts(2.0 * design.v_dd * i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_dsp::metrics::snr_fit_db;
    use efficsense_dsp::spectrum::sine;

    #[test]
    fn quiet_signal_produces_few_events() {
        let mut adc = LcAdc::new(8, 2.0, 0.1);
        let flat = vec![0.001; 10_000];
        let events = adc.convert(&flat);
        assert!(
            events.len() <= 2,
            "flat input must be nearly silent, got {}",
            events.len()
        );
    }

    #[test]
    fn event_count_tracks_signal_activity() {
        let fs = 8192.0;
        let mut adc = LcAdc::new(8, 2.0, 0.1);
        let slow = sine(8192, fs, 2.0, 0.5, 0.0);
        let n_slow = adc.convert(&slow).len();
        adc.reset();
        let fast = sine(8192, fs, 64.0, 0.5, 0.0);
        let n_fast = adc.convert(&fast).len();
        // 32x the frequency → ~32x the slope → ~32x the crossings.
        let ratio = n_fast as f64 / n_slow as f64;
        assert!((20.0..45.0).contains(&ratio), "event ratio {ratio}");
    }

    #[test]
    fn reconstruction_tracks_input_within_lsb() {
        let fs = 8192.0;
        let mut adc = LcAdc::new(8, 2.0, 0.0);
        let x = sine(8192, fs, 10.0, 0.8, 0.0);
        let events = adc.convert(&x);
        let y = adc.reconstruct(&events, x.len());
        let max_err = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err <= 2.0 * adc.lsb() + 1e-12, "max error {max_err}");
        assert!(snr_fit_db(&x, &y) > 30.0);
    }

    #[test]
    fn hysteresis_suppresses_noise_chatter() {
        use efficsense_signals::noise::Gaussian;
        let mut rng = Gaussian::new(3);
        let lsb = 2.0 / 256.0;
        // Noise straddling a level boundary.
        let x: Vec<f64> = (0..20_000)
            .map(|_| lsb / 2.0 + rng.sample_scaled(lsb * 0.2))
            .collect();
        let mut crisp = LcAdc::new(8, 2.0, 0.0);
        let mut damped = LcAdc::new(8, 2.0, 1.0);
        let n_crisp = crisp.convert(&x).len();
        let n_damped = damped.convert(&x).len();
        assert!(
            n_damped * 2 < n_crisp,
            "hysteresis must cut chatter: {n_crisp} vs {n_damped}"
        );
    }

    #[test]
    fn event_rate_drives_transmitter_power() {
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let adc = LcAdc::new(8, 2.0, 0.1);
        let quiet = adc.power_breakdown(10.0, &tech, &design);
        let busy = adc.power_breakdown(1000.0, &tech, &design);
        assert!(busy.get(BlockKind::Transmitter) > 50.0 * quiet.get(BlockKind::Transmitter));
        // Comparators burn static power regardless of activity.
        assert_eq!(
            quiet.get(BlockKind::Comparator),
            busy.get(BlockKind::Comparator)
        );
    }

    #[test]
    fn sparse_biosignals_favour_event_driven_transmission() {
        // The reference-[15] trade-off: for bursty signals the LC-ADC ships
        // fewer bits than Nyquist sampling.
        let design = DesignParams::paper_defaults(8);
        let fs = 4300.8; // CT proxy rate
                         // Mostly-flat signal with one small, slow burst (a bursty biosignal).
        let mut x = vec![0.0; (fs * 4.0) as usize];
        for (i, v) in x.iter_mut().enumerate().skip(2000).take(2000) {
            *v = 0.05 * ((i as f64) * 0.01).sin();
        }
        let mut adc = LcAdc::new(8, 2.0, 0.1);
        let events = adc.convert(&x);
        let event_rate = events.len() as f64 / 4.0;
        let nyquist_word_rate = design.f_sample_hz();
        assert!(
            event_rate < 0.5 * nyquist_word_rate,
            "event rate {event_rate} should undercut Nyquist {nyquist_word_rate}"
        );
    }

    #[test]
    fn comparator_power_grows_with_resolution() {
        let tech = TechnologyParams::gpdk045();
        let design8 = DesignParams::paper_defaults(8);
        let p8 = LcComparatorModel { n_bits: 8 }
            .power(&tech, &design8)
            .value();
        let p10 = LcComparatorModel { n_bits: 10 }
            .power(&tech, &design8)
            .value();
        // Two fewer LSBs → 4x tighter noise → 16x the current.
        assert!((p10 / p8 - 16.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn rejects_zero_bits() {
        let _ = LcAdc::new(0, 2.0, 0.1);
    }
}
