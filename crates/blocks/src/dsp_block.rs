//! On-chip digital signal conditioning (the "DSP" box of paper Fig. 1a).
//!
//! The paper's system diagram includes a DSP block between the ADC and the
//! transmitter but Table II carries no explicit power row for it (its
//! baseline case transmits raw samples). To let the framework explore
//! digital pre-processing trade-offs — e.g. decimating or band-limiting
//! before transmission to cut TX power — this block provides a behavioural
//! FIR conditioner plus a standard dynamic-power model:
//!
//! `P = α · N_taps · (2·C_logic·W²) · V_dd² · f_sample`
//!
//! i.e. each output sample costs `N_taps` multiply-accumulates, a `W`-bit
//! MAC switching roughly `2·W²` gate capacitances (array multiplier bound).

use efficsense_dsp::filter::FirFilter;
use efficsense_power::breakdown::BlockKind;
use efficsense_power::models::PowerModel;
use efficsense_power::Watts;
use efficsense_power::{DesignParams, TechnologyParams};

/// Behavioural digital conditioner: FIR filtering with optional decimation.
#[derive(Debug, Clone)]
pub struct DspBlock {
    filter: FirFilter,
    /// Output keeps one of every `decimation` samples.
    pub decimation: usize,
    /// Datapath word width in bits (usually the ADC resolution).
    pub word_bits: u32,
    phase: usize,
}

impl DspBlock {
    /// Creates a low-pass/decimate conditioner with `taps` coefficients,
    /// cutting at `fc` Hz for input rate `fs`, keeping 1-in-`decimation`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `decimation == 0` or filter design constraints are violated.
    pub fn decimator(taps: usize, fc: f64, fs: f64, decimation: usize, word_bits: u32) -> Self {
        assert!(decimation > 0, "decimation factor must be positive");
        Self {
            filter: FirFilter::lowpass(taps, fc, fs),
            decimation,
            word_bits,
            phase: 0,
        }
    }

    /// Processes one input sample; returns `Some(output)` on kept phases.
    pub fn process(&mut self, x: f64) -> Option<f64> {
        let y = self.filter.process(x);
        let keep = self.phase == 0;
        self.phase = (self.phase + 1) % self.decimation;
        keep.then_some(y)
    }

    /// Processes a buffer, returning the decimated output.
    pub fn process_buffer(&mut self, x: &[f64]) -> Vec<f64> {
        x.iter().filter_map(|&v| self.process(v)).collect()
    }

    /// Number of filter taps.
    pub fn taps(&self) -> usize {
        self.filter.taps().len()
    }

    /// Output rate relative to input (1/decimation).
    pub fn rate_ratio(&self) -> f64 {
        1.0 / self.decimation as f64
    }

    /// The block's power model.
    pub fn power_model(&self) -> DspPowerModel {
        DspPowerModel {
            n_taps: self.taps(),
            word_bits: self.word_bits,
            alpha: 0.4,
        }
    }
}

/// Dynamic-power model of a digital FIR datapath (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DspPowerModel {
    /// Multiply-accumulates per output sample.
    pub n_taps: usize,
    /// Datapath word width (bits).
    pub word_bits: u32,
    /// Switching activity factor.
    pub alpha: f64,
}

impl PowerModel for DspPowerModel {
    fn kind(&self) -> BlockKind {
        BlockKind::SarLogic // accounted with the digital logic group
    }

    fn power(&self, tech: &TechnologyParams, design: &DesignParams) -> Watts {
        let w = self.word_bits as f64;
        let c_mac = 2.0 * tech.c_logic_f * w * w;
        Watts(
            self.alpha
                * self.n_taps as f64
                * c_mac
                * design.v_dd
                * design.v_dd
                * design.f_sample_hz(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_dsp::spectrum::sine;
    use efficsense_dsp::stats::rms;

    #[test]
    fn decimation_reduces_rate() {
        let mut d = DspBlock::decimator(31, 100.0, 1000.0, 4, 8);
        let y = d.process_buffer(&vec![1.0; 400]);
        assert_eq!(y.len(), 100);
        assert!((d.rate_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn filter_blocks_aliasing_band() {
        let fs = 1000.0;
        let mut d = DspBlock::decimator(101, 100.0, fs, 4, 8);
        // 400 Hz would alias to 150 Hz at fs/4 without filtering.
        let x = sine(4000, fs, 400.0, 1.0, 0.0);
        let y = d.process_buffer(&x);
        assert!(rms(&y[200..]) < 0.01);
    }

    #[test]
    fn passband_preserved() {
        let fs = 1000.0;
        let mut d = DspBlock::decimator(101, 100.0, fs, 2, 8);
        let x = sine(4000, fs, 20.0, 1.0, 0.0);
        let y = d.process_buffer(&x);
        let r = rms(&y[500..]);
        assert!(
            (r - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05,
            "rms {r}"
        );
    }

    #[test]
    fn power_scales_with_taps_and_width() {
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let small = DspPowerModel {
            n_taps: 16,
            word_bits: 8,
            alpha: 0.4,
        };
        let long = DspPowerModel {
            n_taps: 64,
            word_bits: 8,
            alpha: 0.4,
        };
        let wide = DspPowerModel {
            n_taps: 16,
            word_bits: 16,
            alpha: 0.4,
        };
        let p_small = small.power(&tech, &design);
        assert!((long.power(&tech, &design) / p_small - 4.0).abs() < 1e-9);
        assert!((wide.power(&tech, &design) / p_small - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dsp_power_is_sub_microwatt_at_paper_rates() {
        // A 32-tap, 8-bit FIR at 537.6 Hz is a negligible budget item —
        // consistent with the paper omitting a DSP row from Table II.
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let p = DspBlock::decimator(32, 100.0, 537.6, 2, 8)
            .power_model()
            .power(&tech, &design)
            .value();
        assert!(p < 1e-7, "DSP power {p}");
    }

    #[test]
    #[should_panic(expected = "decimation")]
    fn rejects_zero_decimation() {
        let _ = DspBlock::decimator(31, 100.0, 1000.0, 0, 8);
    }
}
