//! Behavioural passive charge-sharing CS encoder (paper Fig. 5).
//!
//! An array of `M` hold capacitors accumulates charge-shared samples
//! according to an s-SRBM schedule. Non-idealities modelled:
//!
//! * **capacitor mismatch** — every hold and sample capacitor deviates from
//!   nominal with σ from the technology matching coefficient;
//! * **kT/C noise** — every sampling event adds `sqrt(kT/C_sample)` noise;
//! * **leakage droop** — between shares, hold voltages decay exponentially
//!   with `τ = C_hold · V_ref / I_leak` (off-switch leakage modelled as a
//!   conductance at the nominal reference).
//!
//! The decoder does not know the mismatch/leakage; it inverts the *nominal*
//! effective matrix ([`ChargeSharingEncoder::nominal_effective_matrix`]), so
//! these imperfections show up as reconstruction error — the behaviour the
//! paper's framework is built to quantify.

use efficsense_cs::charge_sharing::{effective_matrix, share};
use efficsense_cs::linalg::Matrix;
use efficsense_cs::matrix::SensingMatrix;
use efficsense_faults::CapLeakageFault;
use efficsense_power::models::{CsEncoderLogicModel, LeakageModel};
use efficsense_power::{kt, DesignParams, PowerBreakdown, PowerModel, TechnologyParams};
use efficsense_signals::noise::Gaussian;

/// Non-ideality switches for the encoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderImperfections {
    /// Enable capacitor mismatch draws.
    pub mismatch: bool,
    /// Enable per-share kT/C sampling noise.
    pub ktc_noise: bool,
    /// Enable leakage droop of held charge.
    pub leakage: bool,
}

impl EncoderImperfections {
    /// All imperfections enabled (the realistic default).
    pub fn realistic() -> Self {
        Self {
            mismatch: true,
            ktc_noise: true,
            leakage: true,
        }
    }

    /// All imperfections disabled (ideal charge-sharing math).
    pub fn ideal() -> Self {
        Self {
            mismatch: false,
            ktc_noise: false,
            leakage: false,
        }
    }
}

impl Default for EncoderImperfections {
    fn default() -> Self {
        Self::realistic()
    }
}

/// Behavioural passive charge-sharing CS encoder.
#[derive(Debug, Clone)]
pub struct ChargeSharingEncoder {
    phi: SensingMatrix,
    /// Nominal sample capacitor (F).
    pub c_sample_f: f64,
    /// Nominal hold capacitor (F).
    pub c_hold_f: f64,
    /// Sample period driving the leakage droop (s).
    pub sample_period_s: f64,
    imperfections: EncoderImperfections,
    /// Actual (mismatched) hold caps, one per measurement row.
    hold_caps: Vec<f64>,
    /// Actual (mismatched) sample caps, one per parallel branch (s of them).
    sample_caps: Vec<f64>,
    /// Leakage time constant (s); infinity when leakage is disabled.
    tau_s: f64,
    noise: Gaussian,
    hold_v: Vec<f64>,
}

impl ChargeSharingEncoder {
    /// Creates an encoder for sensing matrix `phi` with nominal capacitor
    /// values, drawing mismatch deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not an s-SRBM, capacitances are not positive, or
    /// `sample_period_s` is not positive.
    #[allow(clippy::too_many_arguments)] // one argument per physical design variable
    pub fn new(
        phi: SensingMatrix,
        c_sample_f: f64,
        c_hold_f: f64,
        sample_period_s: f64,
        imperfections: EncoderImperfections,
        tech: &TechnologyParams,
        design: &DesignParams,
        seed: u64,
    ) -> Self {
        let s = phi
            .sparsity()
            .expect("charge-sharing encoder requires an s-SRBM schedule");
        assert!(
            c_sample_f > 0.0 && c_hold_f > 0.0,
            "capacitances must be positive"
        );
        assert!(sample_period_s > 0.0, "sample period must be positive");
        let m = phi.m();
        let mut rng = Gaussian::new(seed ^ 0xC5C5_C5C5);
        let draw = |nominal: f64, rng: &mut Gaussian, enabled: bool| {
            if enabled {
                let sigma = tech.cap_mismatch_sigma(nominal);
                nominal * (1.0 + rng.sample_scaled(sigma))
            } else {
                nominal
            }
        };
        let hold_caps: Vec<f64> = (0..m)
            .map(|_| draw(c_hold_f, &mut rng, imperfections.mismatch))
            .collect();
        let sample_caps: Vec<f64> = (0..s)
            .map(|_| draw(c_sample_f, &mut rng, imperfections.mismatch))
            .collect();
        let tau_s = if imperfections.leakage {
            c_hold_f * design.v_ref / tech.i_leak_a
        } else {
            f64::INFINITY
        };
        Self {
            phi,
            c_sample_f,
            c_hold_f,
            sample_period_s,
            imperfections,
            hold_caps,
            sample_caps,
            tau_s,
            noise: Gaussian::new(seed ^ 0x5EED),
            hold_v: vec![0.0; m],
        }
    }

    /// Injects (or clears) a capacitor-leakage fault: a leaking hold switch
    /// multiplies the technology off-current, shrinking the droop time
    /// constant to `τ = C_hold·V_ref/(I_leak·mult)`. The fault forces droop
    /// on even when the clean model runs with leakage disabled; passing
    /// `None` (or a no-op fault) restores the nominal behaviour.
    pub fn inject_leakage_fault(
        &mut self,
        fault: Option<CapLeakageFault>,
        tech: &TechnologyParams,
        design: &DesignParams,
    ) {
        self.tau_s = match fault.filter(|f| !f.is_noop()) {
            Some(f) => self.c_hold_f * design.v_ref / (tech.i_leak_a * f.leak_multiplier),
            None if self.imperfections.leakage => self.c_hold_f * design.v_ref / tech.i_leak_a,
            None => f64::INFINITY,
        };
    }

    /// The s-SRBM schedule.
    pub fn phi(&self) -> &SensingMatrix {
        &self.phi
    }

    /// Number of measurements per frame.
    pub fn m(&self) -> usize {
        self.phi.m()
    }

    /// Frame length in samples.
    pub fn n_phi(&self) -> usize {
        self.phi.n()
    }

    /// kT/C noise σ of one sampling event (V).
    pub fn ktc_sigma(&self) -> f64 {
        (kt() / self.c_sample_f).sqrt()
    }

    /// Encodes one frame of exactly `N_Φ` samples into `M` measurements.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() != n_phi()`.
    pub fn encode_frame(&mut self, frame: &[f64]) -> Vec<f64> {
        assert_eq!(frame.len(), self.n_phi(), "frame length must equal N_Φ");
        for v in &mut self.hold_v {
            *v = 0.0;
        }
        let droop = if self.tau_s.is_finite() {
            (-self.sample_period_s / self.tau_s).exp()
        } else {
            1.0
        };
        let ktc = self.ktc_sigma();
        for (j, &x) in frame.iter().enumerate() {
            // Leakage droop of all held charge over one sample period.
            if !efficsense_dsp::approx::total_eq(droop, 1.0) {
                for v in &mut self.hold_v {
                    *v *= droop;
                }
            }
            // Each of the s parallel sample caps grabs the input and shares
            // with its scheduled destination row.
            for (branch, &r) in self.phi.column_rows(j).iter().enumerate() {
                let c_s = self.sample_caps[branch % self.sample_caps.len()];
                let sampled = if self.imperfections.ktc_noise {
                    x + self.noise.sample_scaled(ktc)
                } else {
                    x
                };
                self.hold_v[r] = share(sampled, c_s, self.hold_v[r], self.hold_caps[r]);
            }
        }
        self.hold_v.clone()
    }

    /// Encodes a long record frame-by-frame; trailing samples that do not fill a
    /// frame are dropped. Returns the concatenated measurements.
    pub fn encode_record(&mut self, x: &[f64]) -> Vec<f64> {
        let n = self.n_phi();
        let mut y = Vec::with_capacity(x.len() / n * self.m());
        for frame in x.chunks_exact(n) {
            y.extend(self.encode_frame(frame));
        }
        y
    }

    /// The nominal effective matrix (Eq. (1) weights folded into Φ) that the
    /// decoder inverts — it does not know the mismatch/noise realisations.
    pub fn nominal_effective_matrix(&self) -> Matrix {
        effective_matrix(&self.phi, self.c_sample_f, self.c_hold_f)
    }

    /// The deterministic held-charge decay per sample period,
    /// `exp(−T_s/τ)` with `τ = C_hold·V_ref/I_leak`; 1.0 when leakage is
    /// disabled.
    pub fn decay_per_step(&self) -> f64 {
        if self.tau_s.is_finite() {
            (-self.sample_period_s / self.tau_s).exp()
        } else {
            1.0
        }
    }

    /// The leakage-aware effective matrix: Eq. (1) weights *and* the
    /// deterministic droop folded into Φ. This is what a competent decoder
    /// inverts — leakage is set by design constants, so only the random
    /// imperfections (mismatch, kT/C) remain unmodelled.
    pub fn leak_aware_effective_matrix(&self) -> Matrix {
        efficsense_cs::charge_sharing::effective_matrix_decayed(
            &self.phi,
            self.c_sample_f,
            self.c_hold_f,
            self.decay_per_step(),
        )
    }

    /// Number of switches in the charge-sharing network: `s` series switches
    /// per destination row plus a sampling switch per branch.
    pub fn switch_count(&self) -> usize {
        self.phi.nnz() / self.n_phi() * (self.m() + 1)
    }

    /// Power breakdown of the encoder: CS shift-register/switch logic plus
    /// static leakage of the switch network (Table II row 7 + leakage row).
    pub fn power_breakdown(
        &self,
        tech: &TechnologyParams,
        design: &DesignParams,
    ) -> PowerBreakdown {
        let mut b = PowerBreakdown::new();
        let logic = CsEncoderLogicModel::new(self.n_phi());
        b.add(logic.kind(), logic.power(tech, design));
        let leak = LeakageModel {
            n_switches: self.switch_count(),
        };
        b.add(leak.kind(), leak.power(tech, design));
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_cs::linalg::norm2;

    fn setup(imp: EncoderImperfections, seed: u64) -> ChargeSharingEncoder {
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let phi = SensingMatrix::srbm(16, 64, 2, 11);
        ChargeSharingEncoder::new(
            phi,
            0.2e-12,
            1.0e-12,
            1.0 / design.f_sample_hz(),
            imp,
            &tech,
            &design,
            seed,
        )
    }

    fn test_frame(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 13 % 29) as f64 - 14.0) / 28.0)
            .collect()
    }

    #[test]
    fn ideal_encoder_matches_effective_matrix() {
        let mut enc = setup(EncoderImperfections::ideal(), 1);
        let x = test_frame(64);
        let y = enc.encode_frame(&x);
        let eff = enc.nominal_effective_matrix();
        let expect = eff.matvec(&x);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn frames_are_independent() {
        let mut enc = setup(EncoderImperfections::ideal(), 2);
        let x = test_frame(64);
        let y1 = enc.encode_frame(&x);
        let y2 = enc.encode_frame(&x); // hold caps reset between frames
        assert_eq!(y1, y2);
    }

    #[test]
    fn mismatch_perturbs_measurements_slightly() {
        let mut ideal = setup(EncoderImperfections::ideal(), 3);
        let mut real = setup(
            EncoderImperfections {
                mismatch: true,
                ktc_noise: false,
                leakage: false,
            },
            3,
        );
        let x = test_frame(64);
        let yi = ideal.encode_frame(&x);
        let yr = real.encode_frame(&x);
        let diff: Vec<f64> = yi.iter().zip(&yr).map(|(a, b)| a - b).collect();
        let rel = norm2(&diff) / norm2(&yi);
        assert!(rel > 0.0, "mismatch must change the output");
        assert!(rel < 0.05, "mismatch error {rel} should be small");
    }

    #[test]
    fn ktc_noise_matches_analytic_prediction() {
        // Single-destination schedule: output noise variance is
        // σ_ktc² · Σ_k w_k² with w_k the Eq. (1) weights of that row.
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let c_s = 0.2e-12;
        let c_h = 1.0e-12;
        let phi = SensingMatrix::srbm(1, 16, 1, 11); // every sample to row 0
        let mut enc = ChargeSharingEncoder::new(
            phi,
            c_s,
            c_h,
            1.0 / design.f_sample_hz(),
            EncoderImperfections {
                mismatch: false,
                ktc_noise: true,
                leakage: false,
            },
            &tech,
            &design,
            5,
        );
        let x = vec![0.0; 16];
        let trials = 4000;
        let mut e = 0.0;
        for _ in 0..trials {
            e += norm2(&enc.encode_frame(&x)).powi(2);
        }
        let measured_var = e / trials as f64;
        let w = efficsense_cs::charge_sharing::eq1_weights(16, c_s, c_h);
        let predict = enc.ktc_sigma().powi(2) * w.iter().map(|v| v * v).sum::<f64>();
        assert!(
            (measured_var / predict - 1.0).abs() < 0.1,
            "measured {measured_var} vs predicted {predict}"
        );
    }

    #[test]
    fn ktc_noise_disabled_means_silent_zero_input() {
        let mut enc = setup(EncoderImperfections::ideal(), 5);
        let y = enc.encode_frame(&vec![0.0; 64]);
        assert!(y.iter().all(|v| efficsense_dsp::approx::is_zero(*v)));
    }

    #[test]
    fn leakage_attenuates_older_contributions() {
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        // One row, contributions early in the frame, long frame → visible droop.
        let phi = SensingMatrix::srbm(4, 256, 1, 21);
        let period = 1.0 / design.f_sample_hz();
        let mk = |leak: bool, seed| {
            ChargeSharingEncoder::new(
                phi.clone(),
                0.2e-12,
                1.0e-12,
                period,
                EncoderImperfections {
                    mismatch: false,
                    ktc_noise: false,
                    leakage: leak,
                },
                &tech,
                &design,
                seed,
            )
        };
        let x = vec![1.0; 256];
        let y_ideal = mk(false, 1).encode_frame(&x);
        let y_leak = mk(true, 1).encode_frame(&x);
        for (i, (a, b)) in y_ideal.iter().zip(&y_leak).enumerate() {
            assert!(b.abs() <= a.abs() + 1e-15, "row {i}: leak increased charge");
        }
        let total_ideal: f64 = y_ideal.iter().sum();
        let total_leak: f64 = y_leak.iter().sum();
        assert!(total_leak < total_ideal * 0.999, "droop not visible");
    }

    #[test]
    fn encode_record_chunks_frames() {
        let mut enc = setup(EncoderImperfections::ideal(), 9);
        let x = test_frame(64 * 3 + 10); // 3 full frames + remainder
        let y = enc.encode_record(&x);
        assert_eq!(y.len(), 3 * 16);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = setup(EncoderImperfections::realistic(), 13);
        let mut b = setup(EncoderImperfections::realistic(), 13);
        let x = test_frame(64);
        assert_eq!(a.encode_frame(&x), b.encode_frame(&x));
    }

    #[test]
    fn power_includes_logic_and_leakage() {
        let enc = setup(EncoderImperfections::realistic(), 1);
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let b = enc.power_breakdown(&tech, &design);
        assert!(b.get(efficsense_power::BlockKind::CsEncoderLogic).value() > 0.0);
        assert!(b.get(efficsense_power::BlockKind::Leakage).value() > 0.0);
        // Logic dominates leakage by orders of magnitude.
        assert!(
            b.get(efficsense_power::BlockKind::CsEncoderLogic)
                > 100.0 * b.get(efficsense_power::BlockKind::Leakage)
        );
    }

    #[test]
    fn noop_leakage_fault_is_bit_identical_to_clean() {
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let x = test_frame(64);
        let mut clean = setup(EncoderImperfections::realistic(), 13);
        let mut faulted = setup(EncoderImperfections::realistic(), 13);
        faulted.inject_leakage_fault(
            Some(CapLeakageFault {
                leak_multiplier: 1.0,
            }),
            &tech,
            &design,
        );
        assert_eq!(clean.encode_frame(&x), faulted.encode_frame(&x));
    }

    #[test]
    fn leakage_fault_forces_droop_even_when_disabled() {
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let x = vec![1.0; 64];
        let mut ideal = setup(EncoderImperfections::ideal(), 1);
        let mut faulted = setup(EncoderImperfections::ideal(), 1);
        faulted.inject_leakage_fault(
            Some(CapLeakageFault {
                leak_multiplier: 100.0,
            }),
            &tech,
            &design,
        );
        let total = |y: &[f64]| y.iter().sum::<f64>();
        let t_ideal = total(&ideal.encode_frame(&x));
        let t_fault = total(&faulted.encode_frame(&x));
        assert!(t_fault < t_ideal * 0.999, "{t_fault} vs {t_ideal}");
        // Clearing the fault restores the imperfection setting (no leakage).
        faulted.inject_leakage_fault(None, &tech, &design);
        let t_restored = total(&faulted.encode_frame(&x));
        assert!((t_restored - t_ideal).abs() < 1e-15);
    }

    #[test]
    fn leakage_fault_severity_is_monotone() {
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let x = vec![1.0; 64];
        let mut last = f64::INFINITY;
        for mult in [10.0, 30.0, 100.0] {
            let mut enc = setup(EncoderImperfections::ideal(), 1);
            enc.inject_leakage_fault(
                Some(CapLeakageFault {
                    leak_multiplier: mult,
                }),
                &tech,
                &design,
            );
            let total = enc.encode_frame(&x).iter().sum::<f64>();
            assert!(total < last, "mult {mult}: {total} !< {last}");
            last = total;
        }
    }

    #[test]
    #[should_panic(expected = "frame length")]
    fn rejects_wrong_frame_length() {
        let mut enc = setup(EncoderImperfections::ideal(), 1);
        let _ = enc.encode_frame(&[0.0; 63]);
    }

    #[test]
    #[should_panic(expected = "s-SRBM")]
    fn rejects_dense_matrix() {
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let _ = ChargeSharingEncoder::new(
            SensingMatrix::gaussian(8, 32, 0),
            1e-12,
            1e-12,
            1e-3,
            EncoderImperfections::ideal(),
            &tech,
            &design,
            0,
        );
    }
}
