//! Plug-and-play analog block composition.
//!
//! The original EffiCSense is a Simulink model library: blocks are dropped
//! into a diagram and wired in series. [`AnalogBlock`] is this crate's
//! equivalent — a sample-rate-synchronous processing stage — and
//! [`AnalogChain`] wires any number of them in series, so users can assemble
//! custom front-ends (extra filters, gain stages, custom nonlinearities)
//! without touching the simulator.

use crate::lna::Lna;
use efficsense_dsp::filter::{Biquad, FirFilter, IirFilter, OnePole};

/// A synchronous analog processing stage (one sample in, one sample out).
///
/// Implemented by the block library's LNA and by the DSP crate's filters;
/// downstream users implement it for custom blocks.
pub trait AnalogBlock {
    /// Processes one sample.
    fn process_sample(&mut self, v: f64) -> f64;

    /// Clears internal state (noise streams may continue).
    fn reset_state(&mut self);
}

impl AnalogBlock for Lna {
    fn process_sample(&mut self, v: f64) -> f64 {
        self.process(v)
    }
    fn reset_state(&mut self) {
        self.reset();
    }
}

impl AnalogBlock for OnePole {
    fn process_sample(&mut self, v: f64) -> f64 {
        self.process(v)
    }
    fn reset_state(&mut self) {
        self.reset();
    }
}

impl AnalogBlock for Biquad {
    fn process_sample(&mut self, v: f64) -> f64 {
        self.process(v)
    }
    fn reset_state(&mut self) {
        self.reset();
    }
}

impl AnalogBlock for IirFilter {
    fn process_sample(&mut self, v: f64) -> f64 {
        self.process(v)
    }
    fn reset_state(&mut self) {
        self.reset();
    }
}

impl AnalogBlock for FirFilter {
    fn process_sample(&mut self, v: f64) -> f64 {
        self.process(v)
    }
    fn reset_state(&mut self) {
        // FIR keeps its delay line; re-create taps-preserving state.
        let taps = self.taps().to_vec();
        *self = FirFilter::new(taps);
    }
}

/// A fixed gain stage (e.g. a PGA setting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gain(
    /// Linear gain factor.
    pub f64,
);

impl AnalogBlock for Gain {
    fn process_sample(&mut self, v: f64) -> f64 {
        v * self.0
    }
    fn reset_state(&mut self) {}
}

/// Hard saturation at ±limit (a rail model usable anywhere in a chain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Saturation(
    /// Absolute clipping level (V).
    pub f64,
);

impl AnalogBlock for Saturation {
    fn process_sample(&mut self, v: f64) -> f64 {
        v.clamp(-self.0, self.0)
    }
    fn reset_state(&mut self) {}
}

/// A series connection of analog blocks.
///
/// ```
/// use efficsense_blocks::chain::{AnalogBlock, AnalogChain, Gain, Saturation};
/// let mut chain = AnalogChain::new();
/// chain.push(Gain(100.0));
/// chain.push(Saturation(1.0));
/// assert_eq!(chain.process_sample(0.005), 0.5);
/// assert_eq!(chain.process_sample(0.05), 1.0); // clipped
/// ```
#[derive(Default)]
pub struct AnalogChain {
    blocks: Vec<Box<dyn AnalogBlock>>,
}

impl std::fmt::Debug for AnalogChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AnalogChain({} blocks)", self.blocks.len())
    }
}

impl AnalogChain {
    /// An empty (pass-through) chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a block to the end of the chain.
    pub fn push<B: AnalogBlock + 'static>(&mut self, block: B) -> &mut Self {
        self.blocks.push(Box::new(block));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Processes a whole buffer through the chain.
    pub fn process_buffer(&mut self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.process_sample(v)).collect()
    }
}

impl AnalogBlock for AnalogChain {
    fn process_sample(&mut self, v: f64) -> f64 {
        self.blocks
            .iter_mut()
            .fold(v, |acc, b| b.process_sample(acc))
    }

    fn reset_state(&mut self) {
        for b in &mut self.blocks {
            b.reset_state();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_dsp::spectrum::sine;
    use efficsense_dsp::stats::rms;

    #[test]
    fn empty_chain_is_identity() {
        let mut c = AnalogChain::new();
        assert!(c.is_empty());
        assert_eq!(c.process_sample(0.7), 0.7);
    }

    #[test]
    fn gain_and_saturation_compose() {
        let mut c = AnalogChain::new();
        c.push(Gain(10.0)).push(Saturation(2.0)).push(Gain(0.5));
        assert_eq!(c.len(), 3);
        assert_eq!(c.process_sample(0.1), 0.5); // 0.1→1.0→1.0→0.5
        assert_eq!(c.process_sample(1.0), 1.0); // 1.0→10→2→1
    }

    #[test]
    fn chain_with_filter_attenuates_high_frequency() {
        let fs = 8192.0;
        let mut c = AnalogChain::new();
        c.push(Gain(1.0));
        c.push(IirFilter::butterworth_lowpass(4, 100.0, fs));
        let hi = sine(8192, fs, 2000.0, 1.0, 0.0);
        let y = c.process_buffer(&hi);
        assert!(rms(&y[2048..]) < 0.02);
    }

    #[test]
    fn lna_usable_as_chain_stage() {
        let fs = 8192.0;
        let mut c = AnalogChain::new();
        c.push(Lna::new(100.0, 1e-9, 768.0, 0.0, 10.0, fs, 1));
        c.push(Saturation(1.0));
        let x = sine(8192, fs, 50.0, 1e-3, 0.0);
        let y = c.process_buffer(&x);
        // Gain 100 on 1 mV → 100 mV (no clipping).
        assert!((rms(&y[2048..]) / rms(&x[2048..]) - 100.0).abs() < 3.0);
    }

    #[test]
    fn reset_clears_filter_state() {
        let mut c = AnalogChain::new();
        c.push(OnePole::lowpass(10.0, 1000.0));
        for _ in 0..100 {
            c.process_sample(1.0);
        }
        c.reset_state();
        // First sample after reset behaves like a fresh filter.
        let mut fresh = OnePole::lowpass(10.0, 1000.0);
        assert_eq!(c.process_sample(1.0), fresh.process(1.0));
    }

    #[test]
    fn nested_chains_compose() {
        let mut inner = AnalogChain::new();
        inner.push(Gain(2.0));
        let mut outer = AnalogChain::new();
        outer.push(inner);
        outer.push(Gain(3.0));
        assert_eq!(outer.process_sample(1.0), 6.0);
    }
}
