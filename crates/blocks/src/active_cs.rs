//! Active (OTA-integrator) CS encoder — the power-hungry alternative the
//! paper's passive charge-sharing design replaces.
//!
//! An active switched-capacitor integrator bank computes the *exact* binary
//! matrix product `y = Φx` (no Eq. (1) geometric decay), at the cost of one
//! OTA per measurement channel. Non-idealities modelled: per-transfer kT/C
//! noise and finite-DC-gain integrator leak.

use efficsense_cs::linalg::Matrix;
use efficsense_cs::matrix::SensingMatrix;
use efficsense_power::models::{CsEncoderLogicModel, PowerModel};
use efficsense_power::ota::OtaIntegratorModel;
use efficsense_power::{kt, DesignParams, PowerBreakdown, TechnologyParams};
use efficsense_signals::noise::Gaussian;

/// Behavioural active CS encoder (integrator bank).
#[derive(Debug, Clone)]
pub struct ActiveCsEncoder {
    phi: SensingMatrix,
    /// Integration capacitor per channel (F).
    pub c_int_f: f64,
    /// OTA DC gain (finite gain causes integrator leak `1 − 1/(A·β)`).
    pub dc_gain: f64,
    /// Enable kT/C noise per charge transfer.
    pub ktc_noise: bool,
    noise: Gaussian,
    acc: Vec<f64>,
}

impl ActiveCsEncoder {
    /// Creates an active encoder for schedule `phi`.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not an s-SRBM, or parameters are non-physical.
    pub fn new(phi: SensingMatrix, c_int_f: f64, dc_gain: f64, ktc_noise: bool, seed: u64) -> Self {
        assert!(
            phi.sparsity().is_some(),
            "active encoder requires an s-SRBM schedule"
        );
        assert!(c_int_f > 0.0, "integration cap must be positive");
        assert!(dc_gain > 1.0, "OTA gain must exceed unity");
        let m = phi.m();
        Self {
            phi,
            c_int_f,
            dc_gain,
            ktc_noise,
            noise: Gaussian::new(seed ^ 0xAC71),
            acc: vec![0.0; m],
        }
    }

    /// Number of measurements per frame.
    pub fn m(&self) -> usize {
        self.phi.m()
    }

    /// Frame length.
    pub fn n_phi(&self) -> usize {
        self.phi.n()
    }

    /// Encodes one frame into `M` measurements.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() != n_phi()`.
    pub fn encode_frame(&mut self, frame: &[f64]) -> Vec<f64> {
        assert_eq!(frame.len(), self.n_phi(), "frame length must equal N_Φ");
        for v in &mut self.acc {
            *v = 0.0;
        }
        let leak = 1.0 - 1.0 / self.dc_gain;
        let sigma = if self.ktc_noise {
            (kt() / self.c_int_f).sqrt()
        } else {
            0.0
        };
        for (j, &x) in frame.iter().enumerate() {
            for &r in self.phi.column_rows(j) {
                let sampled = if sigma > 0.0 {
                    x + self.noise.sample_scaled(sigma)
                } else {
                    x
                };
                // Integrator: previous value leaks by the finite-gain factor.
                self.acc[r] = self.acc[r] * leak + sampled;
            }
        }
        self.acc.clone()
    }

    /// The matrix the decoder inverts: binary Φ with the finite-gain leak
    /// folded in per contribution (analogous to the passive effective
    /// matrix, but without the charge-sharing attenuation).
    pub fn effective_matrix(&self) -> Matrix {
        let (m, n) = (self.phi.m(), self.phi.n());
        let leak = 1.0 - 1.0 / self.dc_gain;
        let mut counts = vec![0usize; m];
        let mut order: Vec<Vec<(usize, usize)>> = vec![Vec::new(); m];
        for j in 0..n {
            for &r in self.phi.column_rows(j) {
                order[r].push((j, counts[r]));
                counts[r] += 1;
            }
        }
        let mut eff = Matrix::zeros(m, n);
        for (r, contribs) in order.iter().enumerate() {
            let k = contribs.len();
            for &(j, l) in contribs {
                eff[(r, j)] = leak.powi((k - 1 - l) as i32);
            }
        }
        eff
    }

    /// Power breakdown: OTA integrators plus the sensing-matrix logic.
    pub fn power_breakdown(
        &self,
        tech: &TechnologyParams,
        design: &DesignParams,
    ) -> PowerBreakdown {
        let mut b = PowerBreakdown::new();
        let ota = OtaIntegratorModel {
            count: self.m(),
            c_int_f: self.c_int_f,
            settle_bits: design.n_bits,
            v_swing: design.v_fs / 2.0,
        };
        b.add(ota.kind(), ota.power(tech, design));
        let logic = CsEncoderLogicModel::new(self.n_phi());
        b.add(logic.kind(), logic.power(tech, design));
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phi() -> SensingMatrix {
        SensingMatrix::srbm(16, 64, 2, 11)
    }

    #[test]
    fn ideal_active_encoder_computes_exact_phi_x() {
        let mut enc = ActiveCsEncoder::new(phi(), 1e-12, 1e9, false, 1);
        let x: Vec<f64> = (0..64).map(|i| ((i * 5 % 17) as f64 - 8.0) / 8.0).collect();
        let y = enc.encode_frame(&x);
        let expect = phi().apply(&x);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn finite_gain_attenuates_early_samples() {
        let mut ideal = ActiveCsEncoder::new(phi(), 1e-12, 1e9, false, 1);
        let mut leaky = ActiveCsEncoder::new(phi(), 1e-12, 100.0, false, 1);
        let x = vec![1.0; 64];
        let yi: f64 = ideal.encode_frame(&x).iter().sum();
        let yl: f64 = leaky.encode_frame(&x).iter().sum();
        assert!(yl < yi);
        assert!(yl > 0.8 * yi, "A=100 leak should be mild: {yl} vs {yi}");
    }

    #[test]
    fn effective_matrix_matches_behaviour() {
        let mut enc = ActiveCsEncoder::new(phi(), 1e-12, 200.0, false, 1);
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
        let y = enc.encode_frame(&x);
        let eff = enc.effective_matrix();
        let expect = eff.matvec(&x);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn measurement_amplitude_larger_than_passive() {
        // The active integrator sums without attenuation: measurements are
        // (much) larger than the charge-sharing encoder's, relaxing the ADC.
        use crate::cs_frontend::{ChargeSharingEncoder, EncoderImperfections};
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let x = vec![0.5; 64];
        let mut passive_enc = ChargeSharingEncoder::new(
            phi(),
            0.1e-12,
            0.5e-12,
            1.0 / design.f_sample_hz(),
            EncoderImperfections::ideal(),
            &tech,
            &design,
            0,
        );
        let passive = passive_enc.encode_frame(&x);
        let mut active = ActiveCsEncoder::new(phi(), 1e-12, 1e9, false, 1);
        let ya = active.encode_frame(&x);
        let sum_p: f64 = passive.iter().map(|v| v.abs()).sum();
        let sum_a: f64 = ya.iter().map(|v| v.abs()).sum();
        assert!(sum_a > 2.0 * sum_p);
    }

    #[test]
    fn active_power_exceeds_passive_logic() {
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let enc = ActiveCsEncoder::new(phi(), 1e-12, 1e4, false, 1);
        let b = enc.power_breakdown(&tech, &design);
        let passive_logic = CsEncoderLogicModel::new(64).power(&tech, &design);
        assert!(b.total() > passive_logic);
    }

    #[test]
    fn ktc_noise_perturbs_output() {
        let x = vec![0.0; 64];
        let mut noisy = ActiveCsEncoder::new(phi(), 1e-13, 1e9, true, 5);
        let y = noisy.encode_frame(&x);
        assert!(y.iter().any(|v| !efficsense_dsp::approx::is_zero(*v)));
        let mut quiet = ActiveCsEncoder::new(phi(), 1e-13, 1e9, false, 5);
        assert!(quiet
            .encode_frame(&x)
            .iter()
            .all(|v| efficsense_dsp::approx::is_zero(*v)));
    }

    #[test]
    #[should_panic(expected = "gain must exceed")]
    fn rejects_unity_gain() {
        let _ = ActiveCsEncoder::new(phi(), 1e-12, 1.0, false, 0);
    }
}
