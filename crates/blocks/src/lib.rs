//! # efficsense-blocks
//!
//! Behavioural mixed-signal block library for EffiCSense.
//!
//! Each block pairs a *functional* model (the signal transformation including
//! its analog non-idealities — noise, bandwidth, nonlinearity, clipping,
//! mismatch, leakage) with the corresponding Table II *power* model from
//! [`efficsense_power`]. This is the paper's central idea: the same design
//! parameters drive both signal quality and power, so an architecture sweep
//! evaluates the two simultaneously.
//!
//! Blocks:
//! * [`lna::Lna`] — gain, input-referred noise, single-pole bandwidth,
//!   3rd-order nonlinearity, supply clipping (paper Fig. 3);
//! * [`sampler::Sampler`] — instant sampling off the continuous-time proxy
//!   with kT/C noise and aperture jitter;
//! * [`adc::SarAdc`] — quantisation, comparator noise/offset, capacitive-DAC
//!   mismatch;
//! * [`cs_frontend::ChargeSharingEncoder`] — the passive switched-capacitor
//!   CS encoder of paper Fig. 5, with capacitor mismatch, kT/C noise and
//!   leakage droop;
//! * [`transmitter::Transmitter`] — bit accounting and transmission energy.
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod active_cs;
pub mod adc;
pub mod chain;
pub mod cs_frontend;
pub mod dsp_block;
pub mod lc_adc;
pub mod lna;
pub mod sampler;
pub mod transmitter;

pub use active_cs::ActiveCsEncoder;
pub use adc::SarAdc;
pub use cs_frontend::ChargeSharingEncoder;
pub use lna::Lna;
pub use sampler::Sampler;
pub use transmitter::Transmitter;
