//! Behavioural LNA model (paper Fig. 3).
//!
//! Signal path: add input-referred white noise → amplify → single-pole
//! low-pass at `BW_LNA` → 3rd-order soft nonlinearity → hard clipping at the
//! supply rails.

use efficsense_dsp::filter::OnePole;
use efficsense_faults::LnaRailFault;
use efficsense_power::models::LnaModel;
use efficsense_power::Watts;
use efficsense_power::{DesignParams, TechnologyParams};
use efficsense_rng::Rng64;
use efficsense_signals::noise::Gaussian;

/// Runtime state of an injected railing fault.
#[derive(Debug, Clone)]
struct RailState {
    fault: LnaRailFault,
    /// Private fault stream (decoupled from the noise stream so injecting a
    /// fault never perturbs the underlying noise realisation).
    rng: Rng64,
    /// Samples left in the current rail episode.
    remaining: usize,
}

/// Behavioural low-noise amplifier.
///
/// `noise_floor_vrms` is the input-referred noise integrated over the LNA
/// bandwidth; the per-sample white-noise variance injected at the input is
/// derived from it using the one-pole equivalent noise bandwidth, so the
/// *output* integrated noise matches the specification irrespective of the
/// simulation rate.
#[derive(Debug, Clone)]
pub struct Lna {
    /// Closed-loop voltage gain.
    pub gain: f64,
    /// Input-referred integrated noise (V rms over `BW_LNA`).
    pub noise_floor_vrms: f64,
    /// −3 dB bandwidth (Hz).
    pub bandwidth_hz: f64,
    /// Third-order coefficient of the input nonlinearity
    /// `v → v·(1 − k₃·(v/v_clip)²)` at the output; 0 disables it.
    pub k3: f64,
    /// Output clipping level (±V, typically `V_dd/2`).
    pub v_clip: f64,
    filter: OnePole,
    noise: Gaussian,
    sigma_per_sample: f64,
    rail: Option<RailState>,
}

impl Lna {
    /// Creates an LNA running at continuous-time proxy rate `f_ct` Hz.
    ///
    /// # Panics
    ///
    /// Panics unless gain, noise floor, bandwidth, `f_ct` and `v_clip` are
    /// positive.
    pub fn new(
        gain: f64,
        noise_floor_vrms: f64,
        bandwidth_hz: f64,
        k3: f64,
        v_clip: f64,
        f_ct: f64,
        seed: u64,
    ) -> Self {
        assert!(gain > 0.0, "gain must be positive");
        assert!(noise_floor_vrms > 0.0, "noise floor must be positive");
        assert!(
            bandwidth_hz > 0.0 && f_ct > 0.0,
            "bandwidth and rate must be positive"
        );
        assert!(v_clip > 0.0, "clip level must be positive");
        // One-pole equivalent noise bandwidth is (π/2)·f_c. White noise of
        // density D over [0, f_ct/2] filtered by the pole integrates to
        // D·(π/2)·f_c, so per-sample σ² = vn²/( (π/2)·f_c ) · (f_ct/2)
        // yields exactly vn² integrated at the output (input-referred).
        let enbw = std::f64::consts::FRAC_PI_2 * bandwidth_hz;
        let density = noise_floor_vrms * noise_floor_vrms / enbw;
        let sigma_per_sample = (density * f_ct / 2.0).sqrt();
        Self {
            gain,
            noise_floor_vrms,
            bandwidth_hz,
            k3,
            v_clip,
            filter: OnePole::lowpass(bandwidth_hz, f_ct),
            noise: Gaussian::new(seed),
            sigma_per_sample,
            rail: None,
        }
    }

    /// Injects (or clears) a railing fault. The fault draws from its own
    /// seeded stream, so the noise realisation is identical with and
    /// without the fault; a no-op fault leaves the output bit-identical.
    pub fn inject_rail_fault(&mut self, fault: Option<LnaRailFault>, fault_seed: u64) {
        self.rail = fault.filter(|f| !f.is_noop()).map(|fault| RailState {
            fault,
            rng: Rng64::new(fault_seed),
            remaining: 0,
        });
    }

    /// Installs a railing fault unconditionally — even a currently-noop
    /// parameterisation — creating its private stream at `fault_seed`.
    ///
    /// Unlike [`Lna::inject_rail_fault`], a noop fault still consumes one
    /// draw from its private stream per sample, so a time-varying plan that
    /// starts at severity 0 keeps a chunk-invariant stream position: the
    /// fault realisation after severity ramps up depends only on how many
    /// samples have passed, never on how the input was chunked. A
    /// zero-severity installed fault is still bit-identical to the clean
    /// path (`chance(0)` never fires and the rails stay at nominal).
    pub fn install_rail_fault(&mut self, fault: LnaRailFault, fault_seed: u64) {
        self.rail = Some(RailState {
            fault,
            rng: Rng64::new(fault_seed),
            remaining: 0,
        });
    }

    /// Updates an installed railing fault's parameters in place, preserving
    /// the private stream position and any in-progress episode. Does
    /// nothing when no fault is installed — severity profiles must
    /// [`Lna::install_rail_fault`] first.
    pub fn set_rail_fault_params(&mut self, fault: LnaRailFault) {
        if let Some(rail) = &mut self.rail {
            rail.fault = fault;
        }
    }

    /// Builds the LNA from the paper's design parameters:
    /// bandwidth `3·BW_in`, clipping at `V_dd/2`.
    pub fn from_design(
        design: &DesignParams,
        gain: f64,
        noise_floor_vrms: f64,
        k3: f64,
        f_ct: f64,
        seed: u64,
    ) -> Self {
        Self::new(
            gain,
            noise_floor_vrms,
            design.bw_lna_hz(),
            k3,
            design.v_dd / 2.0,
            f_ct,
            seed,
        )
    }

    /// Processes one continuous-time-proxy sample (volts in, volts out).
    pub fn process(&mut self, v_in: f64) -> f64 {
        let noisy = v_in + self.noise.sample_scaled(self.sigma_per_sample);
        let amplified = self.filter.process(noisy) * self.gain;
        let shaped = if !efficsense_dsp::approx::is_zero(self.k3) {
            let u = amplified / self.v_clip;
            amplified * (1.0 - self.k3 * u * u)
        } else {
            amplified
        };
        let mut v_clip = self.v_clip;
        if let Some(rail) = &mut self.rail {
            // The fault derates the rails permanently and occasionally
            // latches the output to the (sagging) positive rail.
            v_clip *= rail.fault.v_clip_factor;
            if rail.remaining == 0 && rail.rng.chance(rail.fault.rail_prob) {
                rail.remaining = rail.fault.episode_len;
            }
            if rail.remaining > 0 {
                rail.remaining -= 1;
                return v_clip;
            }
        }
        shaped.clamp(-v_clip, v_clip)
    }

    /// Processes a whole buffer.
    pub fn process_buffer(&mut self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.process(v)).collect()
    }

    /// Resets filter state (noise stream continues).
    pub fn reset(&mut self) {
        self.filter.reset();
    }

    /// The Table II power model bound to this block's design variables.
    ///
    /// `c_load_f` is the capacitance the LNA drives: the S&H capacitor in the
    /// baseline chain, `C_hold` in the CS chain (paper Section III).
    pub fn power_model(&self, c_load_f: f64) -> LnaModel {
        LnaModel {
            noise_floor_vrms: self.noise_floor_vrms,
            c_load_f,
            gain: self.gain,
        }
    }

    /// Convenience: the amplifier power draw for a given load.
    pub fn power(&self, c_load_f: f64, tech: &TechnologyParams, design: &DesignParams) -> Watts {
        use efficsense_power::PowerModel as _;
        self.power_model(c_load_f).power(tech, design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_dsp::spectrum::sine;
    use efficsense_dsp::stats::{peak, rms, std_dev};

    const F_CT: f64 = 8192.0;

    fn quiet_lna(gain: f64) -> Lna {
        Lna::new(gain, 1e-9, 768.0, 0.0, 1.0, F_CT, 1)
    }

    #[test]
    fn amplifies_in_band_tone() {
        let mut lna = quiet_lna(100.0);
        let x = sine(16384, F_CT, 50.0, 1e-3, 0.0);
        let y = lna.process_buffer(&x);
        let g = rms(&y[4096..]) / rms(&x[4096..]);
        assert!((g / 100.0 - 1.0).abs() < 0.02, "gain {g}");
    }

    #[test]
    fn bandwidth_attenuates_out_of_band() {
        let mut lna = quiet_lna(10.0);
        // ~4x the 768 Hz pole (the discrete one-pole's attenuation saturates
        // near Nyquist, so stay well inside the proxy band).
        let x = sine(16384, F_CT, 3000.0, 1e-3, 0.0);
        let y = lna.process_buffer(&x);
        let g_out = rms(&y[4096..]) / rms(&x[4096..]);
        // In-band reference for comparison.
        let mut lna2 = quiet_lna(10.0);
        let xin = sine(16384, F_CT, 50.0, 1e-3, 0.0);
        let yin = lna2.process_buffer(&xin);
        let g_in = rms(&yin[4096..]) / rms(&xin[4096..]);
        assert!(g_out < 0.5 * g_in, "out-of-band {g_out} vs in-band {g_in}");
    }

    #[test]
    fn output_noise_matches_specification() {
        // 5 µV input-referred noise, gain 100 → 500 µV rms at the output.
        let mut lna = Lna::new(100.0, 5e-6, 768.0, 0.0, 1.0, F_CT, 7);
        let y = lna.process_buffer(&vec![0.0; 200_000]);
        let measured = std_dev(&y[10_000..]);
        assert!(
            (measured / 500e-6 - 1.0).abs() < 0.1,
            "output noise {measured} vs expected 500e-6"
        );
    }

    #[test]
    fn noise_spec_independent_of_sim_rate() {
        for f_ct in [4096.0, 16384.0] {
            let mut lna = Lna::new(100.0, 5e-6, 768.0, 0.0, 1.0, f_ct, 7);
            let n = (f_ct * 20.0) as usize;
            let y = lna.process_buffer(&vec![0.0; n]);
            let measured = std_dev(&y[n / 10..]);
            assert!(
                (measured / 500e-6 - 1.0).abs() < 0.15,
                "f_ct={f_ct}: noise {measured}"
            );
        }
    }

    #[test]
    fn clipping_limits_output() {
        let mut lna = quiet_lna(1000.0);
        let x = sine(8192, F_CT, 50.0, 0.1, 0.0); // would be 100 V unclipped
        let y = lna.process_buffer(&x);
        assert!(peak(&y) <= 1.0 + 1e-12);
        // Clipped sine spends time at the rails.
        let railed = y.iter().filter(|v| v.abs() > 0.999).count();
        assert!(railed > 100, "railed {railed}");
    }

    #[test]
    fn nonlinearity_compresses_large_signals() {
        let mut linear = Lna::new(10.0, 1e-9, 768.0, 0.0, 10.0, F_CT, 3);
        let mut nonlin = Lna::new(10.0, 1e-9, 768.0, 0.3, 10.0, F_CT, 3);
        let x = sine(16384, F_CT, 50.0, 0.5, 0.0);
        let yl = linear.process_buffer(&x);
        let yn = nonlin.process_buffer(&x);
        assert!(rms(&yn[4096..]) < rms(&yl[4096..]));
    }

    #[test]
    fn nonlinearity_generates_third_harmonic() {
        use efficsense_dsp::metrics::thd_db;
        let mut nonlin = Lna::new(1.0, 1e-12, 3000.0, 0.1, 10.0, F_CT, 3);
        let f0 = 128.0;
        let x = sine(32768, F_CT, f0, 1.0, 0.0);
        let y = nonlin.process_buffer(&x);
        // k₃·A³/(4·v_clip²) = 0.1/400 → 3rd harmonic ≈ −72 dB.
        let thd = thd_db(&y[8192..], F_CT, f0, 5);
        assert!(thd > -80.0 && thd < -60.0, "THD {thd} dB");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Lna::new(100.0, 2e-6, 768.0, 0.0, 1.0, F_CT, 9);
        let mut b = Lna::new(100.0, 2e-6, 768.0, 0.0, 1.0, F_CT, 9);
        let x = sine(512, F_CT, 50.0, 1e-3, 0.0);
        assert_eq!(a.process_buffer(&x), b.process_buffer(&x));
    }

    #[test]
    fn power_model_binding_uses_block_parameters() {
        let lna = Lna::new(1000.0, 2e-6, 768.0, 0.0, 1.0, F_CT, 0);
        let m = lna.power_model(1e-12);
        assert_eq!(m.noise_floor_vrms, 2e-6);
        assert_eq!(m.gain, 1000.0);
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        assert!(lna.power(1e-12, &tech, &design).value() > 0.0);
    }

    #[test]
    fn from_design_uses_table_iii_relations() {
        let design = DesignParams::paper_defaults(8);
        let lna = Lna::from_design(&design, 500.0, 3e-6, 0.0, F_CT, 1);
        assert_eq!(lna.bandwidth_hz, 768.0);
        assert_eq!(lna.v_clip, 1.0);
    }

    #[test]
    #[should_panic(expected = "noise floor")]
    fn rejects_zero_noise() {
        let _ = Lna::new(100.0, 0.0, 768.0, 0.0, 1.0, F_CT, 0);
    }

    #[test]
    fn noop_rail_fault_is_bit_identical_to_clean() {
        use efficsense_faults::LnaRailFault;
        let x = sine(4096, F_CT, 50.0, 1e-3, 0.0);
        let mut clean = Lna::new(100.0, 2e-6, 768.0, 0.01, 1.0, F_CT, 5);
        let mut faulted = Lna::new(100.0, 2e-6, 768.0, 0.01, 1.0, F_CT, 5);
        faulted.inject_rail_fault(
            Some(LnaRailFault {
                rail_prob: 0.0,
                episode_len: 64,
                v_clip_factor: 1.0,
            }),
            99,
        );
        assert_eq!(clean.process_buffer(&x), faulted.process_buffer(&x));
    }

    #[test]
    fn rail_fault_latches_output_to_derated_rail() {
        use efficsense_faults::LnaRailFault;
        let x = sine(16384, F_CT, 50.0, 1e-3, 0.0);
        let mut lna = Lna::new(100.0, 1e-9, 768.0, 0.0, 1.0, F_CT, 5);
        lna.inject_rail_fault(
            Some(LnaRailFault {
                rail_prob: 0.01,
                episode_len: 64,
                v_clip_factor: 0.5,
            }),
            99,
        );
        let y = lna.process_buffer(&x);
        let railed = y.iter().filter(|&&v| (v - 0.5).abs() < 1e-12).count();
        assert!(railed > 1000, "railed {railed} of {}", y.len());
        assert!(peak(&y) <= 0.5 + 1e-12, "rails must sag to 0.5");
    }

    #[test]
    fn installed_zero_severity_fault_is_bit_identical_to_clean() {
        use efficsense_faults::LnaRailFault;
        let x = sine(4096, F_CT, 50.0, 1e-3, 0.0);
        let mut clean = Lna::new(100.0, 2e-6, 768.0, 0.01, 1.0, F_CT, 5);
        let mut armed = Lna::new(100.0, 2e-6, 768.0, 0.01, 1.0, F_CT, 5);
        armed.install_rail_fault(
            LnaRailFault {
                rail_prob: 0.0,
                episode_len: 64,
                v_clip_factor: 1.0,
            },
            99,
        );
        assert_eq!(clean.process_buffer(&x), armed.process_buffer(&x));
    }

    #[test]
    fn set_rail_fault_params_preserves_stream_position() {
        use efficsense_faults::LnaRailFault;
        let noop = LnaRailFault {
            rail_prob: 0.0,
            episode_len: 64,
            v_clip_factor: 1.0,
        };
        let hot = LnaRailFault {
            rail_prob: 0.05,
            episode_len: 16,
            v_clip_factor: 0.5,
        };
        let x = sine(8192, F_CT, 50.0, 1e-3, 0.0);
        // Two amplifiers take the same path — armed noop, params flipped at
        // the same sample index — in different chunkings; outputs match.
        let mut whole = Lna::new(100.0, 2e-6, 768.0, 0.0, 1.0, F_CT, 5);
        whole.install_rail_fault(noop, 7);
        let mut y_whole = whole.process_buffer(&x[..4096]);
        whole.set_rail_fault_params(hot);
        y_whole.extend(whole.process_buffer(&x[4096..]));

        let mut chunked = Lna::new(100.0, 2e-6, 768.0, 0.0, 1.0, F_CT, 5);
        chunked.install_rail_fault(noop, 7);
        let mut y_chunked = Vec::new();
        for c in x[..4096].chunks(100) {
            y_chunked.extend(chunked.process_buffer(c));
        }
        chunked.set_rail_fault_params(hot);
        for c in x[4096..].chunks(333) {
            y_chunked.extend(chunked.process_buffer(c));
        }
        assert_eq!(y_whole, y_chunked);
        // And the hot phase actually rails.
        let railed = y_whole[4096..]
            .iter()
            .filter(|&&v| (v - 0.5).abs() < 1e-12)
            .count();
        assert!(railed > 100, "railed {railed}");
    }

    #[test]
    fn rail_fault_is_deterministic_per_seed() {
        use efficsense_faults::LnaRailFault;
        let x = sine(4096, F_CT, 50.0, 1e-3, 0.0);
        let fault = Some(LnaRailFault {
            rail_prob: 0.02,
            episode_len: 16,
            v_clip_factor: 0.8,
        });
        let mut a = Lna::new(100.0, 2e-6, 768.0, 0.0, 1.0, F_CT, 5);
        let mut b = Lna::new(100.0, 2e-6, 768.0, 0.0, 1.0, F_CT, 5);
        a.inject_rail_fault(fault, 7);
        b.inject_rail_fault(fault, 7);
        assert_eq!(a.process_buffer(&x), b.process_buffer(&x));
    }
}
