//! Transmitter/storage model: bit accounting and transmission energy.
//!
//! The radio itself is abstracted to an energy-per-bit figure (Table III:
//! 1 nJ/bit); what matters architecturally is *how many bits* the front-end
//! produces, which is where compressive sensing earns its headline saving.

use efficsense_power::models::TransmitterModel;
use efficsense_power::Watts;
use efficsense_power::{DesignParams, PowerModel, TechnologyParams};

/// Bit-accounting transmitter.
#[derive(Debug, Clone, PartialEq)]
pub struct Transmitter {
    /// Bits per transmitted word (the ADC resolution).
    pub bits_per_word: u32,
    /// Words produced per second of signal (ADC sample rate for the
    /// baseline; measurement rate `f_sample·M/N_Φ` for CS).
    pub words_per_second: f64,
    words_sent: u64,
}

impl Transmitter {
    /// Creates a transmitter for `bits_per_word`-bit words at
    /// `words_per_second`.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive.
    pub fn new(bits_per_word: u32, words_per_second: f64) -> Self {
        assert!(bits_per_word > 0, "word size must be positive");
        assert!(words_per_second > 0.0, "word rate must be positive");
        Self {
            bits_per_word,
            words_per_second,
            words_sent: 0,
        }
    }

    /// Baseline configuration: every ADC sample is transmitted.
    pub fn baseline(design: &DesignParams) -> Self {
        Self::new(design.n_bits, design.f_sample_hz())
    }

    /// Compressive-sensing configuration: `m` words per `n_phi`-sample frame.
    pub fn compressive(design: &DesignParams, m: usize, n_phi: usize) -> Self {
        assert!(m > 0 && n_phi >= m, "need 0 < m <= n_phi");
        Self::new(
            design.n_bits,
            design.f_sample_hz() * m as f64 / n_phi as f64,
        )
    }

    /// Records the transmission of `words` data words.
    pub fn send(&mut self, words: u64) {
        self.words_sent += words;
    }

    /// Total words recorded so far.
    pub fn words_sent(&self) -> u64 {
        self.words_sent
    }

    /// Total bits recorded so far.
    pub fn bits_sent(&self) -> u64 {
        self.words_sent * self.bits_per_word as u64
    }

    /// Total transmission energy so far (J).
    pub fn energy_j(&self, tech: &TechnologyParams) -> f64 {
        self.bits_sent() as f64 * tech.e_bit_j
    }

    /// Average bit rate (bits/s).
    pub fn bit_rate(&self) -> f64 {
        self.words_per_second * self.bits_per_word as f64
    }

    /// Compression ratio relative to a Nyquist-rate baseline with the same
    /// resolution.
    pub fn compression_ratio(&self, design: &DesignParams) -> f64 {
        (self.words_per_second / design.f_sample_hz()).min(1.0)
    }

    /// The Table II power model for this transmitter.
    pub fn power_model(&self, design: &DesignParams) -> TransmitterModel {
        TransmitterModel {
            compression_ratio: self.compression_ratio(design),
        }
    }

    /// Convenience: the average transmit power.
    pub fn power(&self, tech: &TechnologyParams, design: &DesignParams) -> Watts {
        self.power_model(design).power(tech, design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TechnologyParams, DesignParams) {
        (TechnologyParams::gpdk045(), DesignParams::paper_defaults(8))
    }

    #[test]
    fn baseline_rate_is_sample_rate() {
        let (_, d) = setup();
        let tx = Transmitter::baseline(&d);
        assert_eq!(tx.bits_per_word, 8);
        assert!((tx.words_per_second - 537.6).abs() < 1e-9);
        assert!((tx.bit_rate() - 537.6 * 8.0).abs() < 1e-9);
        assert!((tx.compression_ratio(&d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compressive_rate_scales_by_m_over_n() {
        let (_, d) = setup();
        let tx = Transmitter::compressive(&d, 75, 384);
        assert!((tx.compression_ratio(&d) - 75.0 / 384.0).abs() < 1e-12);
    }

    #[test]
    fn accounting_accumulates() {
        let (t, _) = setup();
        let mut tx = Transmitter::new(8, 100.0);
        tx.send(10);
        tx.send(5);
        assert_eq!(tx.words_sent(), 15);
        assert_eq!(tx.bits_sent(), 120);
        assert!((tx.energy_j(&t) - 120e-9).abs() < 1e-18);
    }

    #[test]
    fn cs_power_matches_ratio() {
        let (t, d) = setup();
        let base = Transmitter::baseline(&d).power(&t, &d).value();
        let cs = Transmitter::compressive(&d, 96, 384).power(&t, &d).value();
        assert!((cs / base - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_headline_baseline_tx_power() {
        // 537.6 Hz · 8 bit · 1 nJ ≈ 4.3 µW.
        let (t, d) = setup();
        let p = Transmitter::baseline(&d).power(&t, &d).value();
        assert!((p - 4.3008e-6).abs() < 1e-9, "{p}");
    }

    #[test]
    #[should_panic(expected = "m <= n_phi")]
    fn rejects_m_above_frame() {
        let (_, d) = setup();
        let _ = Transmitter::compressive(&d, 400, 384);
    }
}
