//! Behavioural SAR ADC with comparator noise/offset and capacitive-DAC
//! mismatch.
//!
//! The converter performs a real successive-approximation search against a
//! binary-weighted capacitor DAC whose per-bit weights carry mismatch drawn
//! from the technology's matching coefficient. The digital output is
//! interpreted with *ideal* weights, so mismatch appears as INL/DNL, exactly
//! as in silicon.

use efficsense_faults::AdcStuckBitFault;
use efficsense_power::models::{ComparatorModel, DacModel, SarLogicModel};
use efficsense_power::{DesignParams, PowerBreakdown, PowerModel, TechnologyParams};
use efficsense_signals::noise::Gaussian;

/// Behavioural SAR analog-to-digital converter.
///
/// Input range is bipolar `[-V_FS/2, +V_FS/2]`.
#[derive(Debug, Clone)]
pub struct SarAdc {
    /// Resolution in bits.
    pub n_bits: u32,
    /// Full-scale range (V).
    pub v_fs: f64,
    /// Unit capacitor of the DAC array (F).
    pub c_u_f: f64,
    /// Comparator input-referred noise (V rms per decision).
    pub comparator_noise_v: f64,
    /// Comparator offset (V).
    pub comparator_offset_v: f64,
    /// Actual (mismatched) per-bit capacitances, LSB first, in units of `C_u`.
    bit_caps: Vec<f64>,
    /// Total array capacitance including the termination cap, in `C_u`.
    c_total: f64,
    noise: Gaussian,
    stuck: Option<AdcStuckBitFault>,
}

impl SarAdc {
    /// Creates an ADC, drawing the DAC mismatch deterministically from
    /// `seed` using the technology matching coefficient.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n_bits <= 16`, `v_fs > 0` and `c_u_f` is at least
    /// the technology minimum.
    pub fn new(
        n_bits: u32,
        v_fs: f64,
        c_u_f: f64,
        comparator_noise_v: f64,
        comparator_offset_v: f64,
        tech: &TechnologyParams,
        seed: u64,
    ) -> Self {
        assert!(
            (1..=16).contains(&n_bits),
            "resolution {n_bits} out of range 1..=16"
        );
        assert!(v_fs > 0.0, "full scale must be positive");
        assert!(
            c_u_f >= tech.c_u_min_f,
            "unit cap {c_u_f} below technology minimum {}",
            tech.c_u_min_f
        );
        assert!(
            comparator_noise_v >= 0.0,
            "comparator noise must be non-negative"
        );
        let mut rng = Gaussian::new(seed ^ 0xADC0_ADC0);
        let sigma_unit = tech.cap_mismatch_sigma(c_u_f);
        // Bit i holds 2^i unit caps; its relative mismatch shrinks as 1/√2^i.
        let bit_caps: Vec<f64> = (0..n_bits)
            .map(|i| {
                let units = 2f64.powi(i as i32);
                let sigma = sigma_unit / units.sqrt();
                units * (1.0 + rng.sample_scaled(sigma))
            })
            .collect();
        let c_total = bit_caps.iter().sum::<f64>() + 1.0; // + termination cap
        Self {
            n_bits,
            v_fs,
            c_u_f,
            comparator_noise_v,
            comparator_offset_v,
            bit_caps,
            c_total,
            noise: Gaussian::new(seed ^ 0xC0DE),
            stuck: None,
        }
    }

    /// Injects (or clears) a stuck-output-bit fault. The stuck bit index is
    /// clamped to the converter's MSB.
    pub fn inject_stuck_bit(&mut self, fault: Option<AdcStuckBitFault>) {
        self.stuck = fault;
    }

    /// An ideal converter (no mismatch, no comparator non-idealities).
    pub fn ideal(n_bits: u32, v_fs: f64) -> Self {
        let tech = TechnologyParams::gpdk045();
        let mut adc = Self::new(n_bits, v_fs, tech.c_u_min_f, 0.0, 0.0, &tech, 0);
        for (i, c) in adc.bit_caps.iter_mut().enumerate() {
            *c = 2f64.powi(i as i32);
        }
        adc.c_total = adc.bit_caps.iter().sum::<f64>() + 1.0;
        adc
    }

    /// DAC output voltage (unipolar, V) for a digital `code` using the
    /// actual mismatched weights.
    fn dac_voltage(&self, code: u32) -> f64 {
        let mut c_on = 0.0;
        for (i, &c) in self.bit_caps.iter().enumerate() {
            if code & (1 << i) != 0 {
                c_on += c;
            }
        }
        self.v_fs * c_on / self.c_total
    }

    /// Converts an input voltage to a digital code via successive
    /// approximation (input clipped to the full-scale range).
    pub fn quantize(&mut self, v_in: f64) -> u32 {
        // Shift to unipolar [0, FS].
        let u = (v_in + self.v_fs / 2.0).clamp(0.0, self.v_fs);
        let mut code = 0u32;
        for i in (0..self.n_bits).rev() {
            let trial = code | (1 << i);
            let v_dac = self.dac_voltage(trial);
            let decision_noise = if self.comparator_noise_v > 0.0 {
                self.noise.sample_scaled(self.comparator_noise_v)
            } else {
                0.0
            };
            // Keep the bit if the input (plus comparator error) is above the
            // trial level's midpoint reference.
            if u + decision_noise + self.comparator_offset_v >= v_dac {
                code = trial;
            }
        }
        if let Some(f) = &self.stuck {
            let mask = 1u32 << f.bit.min(self.n_bits - 1);
            if f.stuck_high {
                code |= mask;
            } else {
                code &= !mask;
            }
        }
        code
    }

    /// Converts a digital code back to a bipolar voltage using *ideal*
    /// weights (what the digital back-end believes).
    pub fn reconstruct(&self, code: u32) -> f64 {
        let steps = (1u64 << self.n_bits) as f64;
        (code as f64 + 0.5) / steps * self.v_fs - self.v_fs / 2.0
    }

    /// Full conversion: analog in, ideal-weight analog interpretation out.
    pub fn process(&mut self, v_in: f64) -> f64 {
        let code = self.quantize(v_in);
        self.reconstruct(code)
    }

    /// Converts a whole buffer.
    pub fn process_buffer(&mut self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.process(v)).collect()
    }

    /// Quantisation step (ideal LSB, V).
    pub fn lsb(&self) -> f64 {
        self.v_fs / (1u64 << self.n_bits) as f64
    }

    /// Integral nonlinearity curve in LSB, one entry per code, measured from
    /// the actual DAC levels (excludes comparator noise).
    pub fn inl_lsb(&self) -> Vec<f64> {
        let steps = 1u64 << self.n_bits;
        let lsb = self.lsb();
        (0..steps as u32)
            .map(|code| {
                let actual = self.dac_voltage(code);
                let ideal = code as f64 * lsb;
                (actual - ideal) / lsb
            })
            .collect()
    }

    /// Differential nonlinearity in LSB, one entry per code transition
    /// (`steps − 1` entries): the deviation of each step width from one LSB.
    pub fn dnl_lsb(&self) -> Vec<f64> {
        let inl = self.inl_lsb();
        inl.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Code-density (histogram) linearity test: converts a slow full-range
    /// ramp of `samples_per_code · 2^N` points and estimates DNL from the
    /// relative occupancy of each code — the standard lab method, which sees
    /// the *whole* converter (comparator noise included), unlike
    /// [`SarAdc::dnl_lsb`] which reads the DAC levels directly.
    ///
    /// Returns per-code DNL estimates in LSB (first and last code excluded,
    /// as is conventional — their bins are unbounded).
    pub fn histogram_dnl_lsb(&mut self, samples_per_code: usize) -> Vec<f64> {
        assert!(samples_per_code >= 4, "need several samples per code");
        let steps = 1usize << self.n_bits;
        let total = samples_per_code * steps;
        let mut counts = vec![0usize; steps];
        for i in 0..total {
            // Slow ramp covering slightly beyond full scale.
            let v = -self.v_fs / 2.0 + self.v_fs * (i as f64 + 0.5) / total as f64;
            counts[self.quantize(v) as usize] += 1;
        }
        // Interior codes: expected occupancy is samples_per_code.
        counts[1..steps - 1]
            .iter()
            .map(|&c| c as f64 / samples_per_code as f64 - 1.0)
            .collect()
    }

    /// Combined power breakdown of the converter's three Table II models
    /// (comparator, SAR logic, DAC) for a scenario with RMS input `v_in_rms`.
    pub fn power_breakdown(
        &self,
        v_in_rms: f64,
        tech: &TechnologyParams,
        design: &DesignParams,
    ) -> PowerBreakdown {
        let mut b = PowerBreakdown::new();
        let comp = ComparatorModel;
        let logic = SarLogicModel::default();
        let dac = DacModel {
            c_u_f: self.c_u_f,
            v_in_rms,
        };
        b.add(comp.kind(), comp.power(tech, design));
        b.add(logic.kind(), logic.power(tech, design));
        b.add(dac.kind(), dac.power(tech, design));
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_dsp::metrics::enob;
    use efficsense_dsp::spectrum::{coherent_frequency, sine};

    #[test]
    fn ideal_quantization_error_bounded_by_half_lsb() {
        let mut adc = SarAdc::ideal(8, 2.0);
        let lsb = adc.lsb();
        for k in -100..=100 {
            let v = k as f64 * 0.009;
            let out = adc.process(v);
            assert!((out - v).abs() <= lsb, "error {} at {v}", (out - v).abs());
        }
    }

    #[test]
    fn codes_monotonic_for_ideal_adc() {
        let mut adc = SarAdc::ideal(6, 2.0);
        let mut last = 0;
        for i in 0..2000 {
            let v = -1.0 + 2.0 * i as f64 / 2000.0;
            let c = adc.quantize(v);
            assert!(c >= last, "non-monotonic at {v}");
            last = c;
        }
        assert_eq!(last, 63);
    }

    #[test]
    fn full_scale_extremes() {
        let mut adc = SarAdc::ideal(8, 2.0);
        assert_eq!(adc.quantize(-2.0), 0); // clipped
        assert_eq!(adc.quantize(2.0), 255); // clipped
    }

    #[test]
    fn ideal_adc_achieves_nominal_enob() {
        let fs = 8192.0;
        let n = 16384;
        let f0 = coherent_frequency(419.0, fs, n);
        let x = sine(n, fs, f0, 0.99, 0.0); // almost full scale of ±1
        let mut adc = SarAdc::ideal(8, 2.0);
        let y = adc.process_buffer(&x);
        let e = enob(&y, fs, f0);
        assert!((e - 8.0).abs() < 0.3, "ENOB {e}");
    }

    #[test]
    fn comparator_noise_degrades_enob() {
        let fs = 8192.0;
        let n = 16384;
        let f0 = coherent_frequency(419.0, fs, n);
        let x = sine(n, fs, f0, 0.99, 0.0);
        let tech = TechnologyParams::gpdk045();
        let mut noisy = SarAdc::new(8, 2.0, 1e-15, 0.02, 0.0, &tech, 1);
        let y = noisy.process_buffer(&x);
        let e = enob(&y, fs, f0);
        assert!(
            e < 7.0,
            "noisy comparator ENOB {e} should drop well below 8"
        );
    }

    #[test]
    fn mismatch_creates_inl() {
        let tech = TechnologyParams::gpdk045();
        // Small unit cap → bad matching → visible INL.
        let adc = SarAdc::new(10, 2.0, 1e-15, 0.0, 0.0, &tech, 3);
        let inl = adc.inl_lsb();
        let max_inl = inl.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max_inl > 0.01, "max INL {max_inl}");
        // Ideal converter has zero INL.
        let ideal = SarAdc::ideal(10, 2.0);
        let max_ideal = ideal.inl_lsb().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max_ideal < 1e-9);
    }

    #[test]
    fn larger_unit_caps_match_better() {
        let tech = TechnologyParams::gpdk045();
        let small = SarAdc::new(10, 2.0, 1e-15, 0.0, 0.0, &tech, 5);
        let large = SarAdc::new(10, 2.0, 100e-15, 0.0, 0.0, &tech, 5);
        let worst = |a: &SarAdc| a.inl_lsb().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(worst(&large) < worst(&small));
    }

    #[test]
    fn dnl_derives_from_inl() {
        let tech = TechnologyParams::gpdk045();
        let adc = SarAdc::new(8, 2.0, 1e-15, 0.0, 0.0, &tech, 11);
        let inl = adc.inl_lsb();
        let dnl = adc.dnl_lsb();
        assert_eq!(dnl.len(), inl.len() - 1);
        // Reconstruct INL by integrating DNL.
        let mut acc = inl[0];
        for (k, d) in dnl.iter().enumerate() {
            acc += d;
            assert!((acc - inl[k + 1]).abs() < 1e-12);
        }
    }

    #[test]
    fn ideal_adc_histogram_dnl_is_flat() {
        let mut adc = SarAdc::ideal(6, 2.0);
        let dnl = adc.histogram_dnl_lsb(64);
        let worst = dnl.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(worst < 0.05, "ideal histogram DNL {worst}");
    }

    #[test]
    fn histogram_test_sees_mismatch() {
        let tech = TechnologyParams::gpdk045();
        // Bad matching: visible DNL through the histogram method too.
        let mut adc = SarAdc::new(8, 2.0, 1e-15, 0.0, 0.0, &tech, 3);
        let hist = adc.histogram_dnl_lsb(32);
        let worst_hist = hist.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let worst_direct = adc.dnl_lsb().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(
            worst_hist > 0.3 * worst_direct,
            "{worst_hist} vs {worst_direct}"
        );
    }

    #[test]
    fn offset_shifts_transfer() {
        let tech = TechnologyParams::gpdk045();
        let mut plain = SarAdc::new(8, 2.0, 1e-12, 0.0, 0.0, &tech, 7);
        let mut offset = SarAdc::new(8, 2.0, 1e-12, 0.0, 0.1, &tech, 7);
        // +100 mV offset moves codes up by ~12.8 LSB at mid-scale.
        let c0 = plain.quantize(0.0);
        let c1 = offset.quantize(0.0);
        assert!(
            (c1 as i64 - c0 as i64 - 13).unsigned_abs() <= 1,
            "{c0} vs {c1}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let tech = TechnologyParams::gpdk045();
        let mut a = SarAdc::new(8, 2.0, 1e-15, 0.01, 0.0, &tech, 9);
        let mut b = SarAdc::new(8, 2.0, 1e-15, 0.01, 0.0, &tech, 9);
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.07).sin()).collect();
        assert_eq!(a.process_buffer(&x), b.process_buffer(&x));
    }

    #[test]
    fn power_breakdown_has_three_blocks() {
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let adc = SarAdc::ideal(8, 2.0);
        let b = adc.power_breakdown(0.5, &tech, &design);
        assert!(b.get(efficsense_power::BlockKind::Comparator).value() > 0.0);
        assert!(b.get(efficsense_power::BlockKind::SarLogic).value() > 0.0);
        assert!(b.get(efficsense_power::BlockKind::Dac).value() > 0.0);
    }

    #[test]
    #[should_panic(expected = "below technology minimum")]
    fn rejects_tiny_unit_cap() {
        let tech = TechnologyParams::gpdk045();
        let _ = SarAdc::new(8, 2.0, 1e-16, 0.0, 0.0, &tech, 0);
    }

    #[test]
    fn stuck_high_bit_never_clears() {
        use efficsense_faults::AdcStuckBitFault;
        let mut adc = SarAdc::ideal(8, 2.0);
        adc.inject_stuck_bit(Some(AdcStuckBitFault {
            bit: 5,
            stuck_high: true,
        }));
        for i in 0..500 {
            let v = -1.0 + 2.0 * i as f64 / 500.0;
            assert_ne!(adc.quantize(v) & (1 << 5), 0, "bit 5 must read high at {v}");
        }
    }

    #[test]
    fn stuck_msb_halves_the_code_space() {
        use efficsense_faults::AdcStuckBitFault;
        let mut adc = SarAdc::ideal(8, 2.0);
        adc.inject_stuck_bit(Some(AdcStuckBitFault {
            bit: 7,
            stuck_high: false,
        }));
        assert_eq!(adc.quantize(0.999), 127, "MSB stuck low caps the range");
    }

    #[test]
    fn stuck_bit_index_clamps_to_msb() {
        use efficsense_faults::AdcStuckBitFault;
        let mut adc = SarAdc::ideal(6, 2.0);
        adc.inject_stuck_bit(Some(AdcStuckBitFault {
            bit: 31,
            stuck_high: true,
        }));
        assert_ne!(adc.quantize(-1.0) & (1 << 5), 0, "clamped to bit 5 of 6");
    }

    #[test]
    fn msb_stuck_degrades_more_than_lsb_stuck() {
        use efficsense_faults::AdcStuckBitFault;
        let x: Vec<f64> = (0..512).map(|i| 0.9 * (i as f64 * 0.13).sin()).collect();
        let err_with_bit = |bit: u32| {
            let mut adc = SarAdc::ideal(8, 2.0);
            adc.inject_stuck_bit(Some(AdcStuckBitFault {
                bit,
                stuck_high: true,
            }));
            let y = adc.process_buffer(&x);
            x.iter()
                .zip(&y)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        };
        assert!(err_with_bit(7) > 10.0 * err_with_bit(0));
    }
}
