//! Sample-and-hold model: samples the continuous-time proxy at `f_sample`
//! with kT/C thermal noise and optional aperture jitter.

use efficsense_dsp::resample::sample_at;
use efficsense_power::models::SampleHoldModel;
use efficsense_power::Watts;
use efficsense_power::{kt, DesignParams, TechnologyParams};
use efficsense_signals::noise::Gaussian;

/// Behavioural sample-and-hold.
#[derive(Debug, Clone)]
pub struct Sampler {
    /// Output sample rate (Hz).
    pub fs: f64,
    /// Sampling capacitor (F) — sets the kT/C noise floor.
    pub c_sample_f: f64,
    /// RMS aperture jitter (s); 0 disables it.
    pub jitter_s: f64,
    noise: Gaussian,
}

impl Sampler {
    /// Creates a sampler at `fs` Hz with sampling capacitor `c_sample_f`.
    ///
    /// # Panics
    ///
    /// Panics unless `fs` and `c_sample_f` are positive and `jitter_s >= 0`.
    pub fn new(fs: f64, c_sample_f: f64, jitter_s: f64, seed: u64) -> Self {
        assert!(fs > 0.0, "sample rate must be positive");
        assert!(c_sample_f > 0.0, "sampling capacitor must be positive");
        assert!(jitter_s >= 0.0, "jitter must be non-negative");
        Self {
            fs,
            c_sample_f,
            jitter_s,
            noise: Gaussian::new(seed),
        }
    }

    /// kT/C noise standard deviation (V) of one sample.
    pub fn ktc_sigma(&self) -> f64 {
        (kt() / self.c_sample_f).sqrt()
    }

    /// Samples a continuous-time proxy record (`x` at rate `f_ct`) at this
    /// sampler's rate, returning the discrete-time samples.
    pub fn sample(&mut self, x: &[f64], f_ct: f64) -> Vec<f64> {
        assert!(f_ct > 0.0, "proxy rate must be positive");
        let duration = x.len() as f64 / f_ct;
        let n_out = (duration * self.fs).floor() as usize;
        let sigma = self.ktc_sigma();
        (0..n_out)
            .map(|i| {
                let mut t = i as f64 / self.fs;
                if self.jitter_s > 0.0 {
                    t += self.noise.sample_scaled(self.jitter_s);
                }
                sample_at(x, f_ct, t.max(0.0)) + self.noise.sample_scaled(sigma)
            })
            .collect()
    }

    /// The Table II power model for the S&H.
    pub fn power_model(&self) -> SampleHoldModel {
        SampleHoldModel
    }

    /// Convenience: the S&H power draw.
    pub fn power(&self, tech: &TechnologyParams, design: &DesignParams) -> Watts {
        use efficsense_power::PowerModel as _;
        self.power_model().power(tech, design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_dsp::spectrum::sine;
    use efficsense_dsp::stats::std_dev;

    #[test]
    fn output_length_matches_duration() {
        let mut s = Sampler::new(537.6, 1e-12, 0.0, 1);
        let x = vec![0.0; 8192];
        let y = s.sample(&x, 8192.0); // 1 second
        assert_eq!(y.len(), 537);
    }

    #[test]
    fn ktc_sigma_value() {
        let s = Sampler::new(537.6, 1e-12, 0.0, 1);
        // kT/C at 1 pF, 300 K → ~64 µV.
        let sigma = s.ktc_sigma();
        assert!((sigma - 64e-6).abs() < 2e-6, "kT/C sigma {sigma}");
    }

    #[test]
    fn samples_track_slow_signal() {
        let f_ct = 8192.0;
        let mut s = Sampler::new(537.6, 1e-9, 0.0, 2); // big cap → tiny noise
        let x = sine(16384, f_ct, 10.0, 1.0, 0.0);
        let y = s.sample(&x, f_ct);
        let expect = sine(y.len(), 537.6, 10.0, 1.0, 0.0);
        let err: f64 = y
            .iter()
            .zip(&expect)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / y.len() as f64;
        assert!(err.sqrt() < 0.01, "tracking error {}", err.sqrt());
    }

    #[test]
    fn noise_floor_follows_cap_size() {
        let f_ct = 4096.0;
        let x = vec![0.0; 40960];
        let mut small = Sampler::new(537.6, 0.1e-12, 0.0, 3);
        let mut large = Sampler::new(537.6, 10e-12, 0.0, 3);
        let ys = small.sample(&x, f_ct);
        let yl = large.sample(&x, f_ct);
        let ratio = std_dev(&ys) / std_dev(&yl);
        assert!(
            (ratio - 10.0).abs() < 1.5,
            "noise ratio {ratio} (expect 10)"
        );
    }

    #[test]
    fn jitter_degrades_fast_signals_only() {
        let f_ct = 65536.0;
        let x_fast = sine(65536, f_ct, 200.0, 1.0, 0.0);
        let jitter = 100e-6; // deliberately huge for visibility
        let mut jittered = Sampler::new(537.6, 1e-9, jitter, 5);
        let y = jittered.sample(&x_fast, f_ct);
        let clean = sine(y.len(), 537.6, 200.0, 1.0, 0.0);
        let err: Vec<f64> = y.iter().zip(&clean).map(|(a, b)| a - b).collect();
        // Predicted jitter error rms ≈ 2π·f·σ_t·A/√2.
        let predicted = std::f64::consts::TAU * 200.0 * jitter / 2f64.sqrt();
        let measured = std_dev(&err);
        assert!(
            (measured / predicted - 1.0).abs() < 0.4,
            "{measured} vs {predicted}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let x = sine(8192, 8192.0, 20.0, 1.0, 0.0);
        let mut a = Sampler::new(537.6, 1e-12, 1e-6, 11);
        let mut b = Sampler::new(537.6, 1e-12, 1e-6, 11);
        assert_eq!(a.sample(&x, 8192.0), b.sample(&x, 8192.0));
    }

    #[test]
    fn power_positive() {
        let s = Sampler::new(537.6, 1e-12, 0.0, 0);
        let p = s
            .power(
                &TechnologyParams::gpdk045(),
                &DesignParams::paper_defaults(8),
            )
            .value();
        assert!(p > 0.0);
    }

    #[test]
    #[should_panic(expected = "capacitor")]
    fn rejects_zero_cap() {
        let _ = Sampler::new(537.6, 0.0, 0.0, 0);
    }
}
