//! Sample-and-hold model: samples the continuous-time proxy at `f_sample`
//! with kT/C thermal noise and optional aperture jitter.

use efficsense_dsp::resample::sample_at;
use efficsense_faults::ClockFault;
use efficsense_power::models::SampleHoldModel;
use efficsense_power::Watts;
use efficsense_power::{kt, DesignParams, TechnologyParams};
use efficsense_rng::Rng64;
use efficsense_signals::noise::Gaussian;

/// Injected sample-clock fault with its own random streams, so the clean
/// noise realisation is untouched by injection.
#[derive(Debug, Clone)]
struct ClockState {
    fault: ClockFault,
    jitter_rng: Gaussian,
    drop_rng: Rng64,
}

/// Behavioural sample-and-hold.
#[derive(Debug, Clone)]
pub struct Sampler {
    /// Output sample rate (Hz).
    pub fs: f64,
    /// Sampling capacitor (F) — sets the kT/C noise floor.
    pub c_sample_f: f64,
    /// RMS aperture jitter (s); 0 disables it.
    pub jitter_s: f64,
    noise: Gaussian,
    clock: Option<ClockState>,
}

impl Sampler {
    /// Creates a sampler at `fs` Hz with sampling capacitor `c_sample_f`.
    ///
    /// # Panics
    ///
    /// Panics unless `fs` and `c_sample_f` are positive and `jitter_s >= 0`.
    pub fn new(fs: f64, c_sample_f: f64, jitter_s: f64, seed: u64) -> Self {
        assert!(fs > 0.0, "sample rate must be positive");
        assert!(c_sample_f > 0.0, "sampling capacitor must be positive");
        assert!(jitter_s >= 0.0, "jitter must be non-negative");
        Self {
            fs,
            c_sample_f,
            jitter_s,
            noise: Gaussian::new(seed),
            clock: None,
        }
    }

    /// Injects (or clears) a sample-clock fault. Excess jitter is
    /// `fault.jitter_periods` of the sample period, RMS; dropped samples are
    /// concealed by holding the last acquired value (the hold cap keeps its
    /// charge when the track switch fails to close).
    pub fn inject_clock_fault(&mut self, fault: Option<ClockFault>, fault_seed: u64) {
        self.clock = fault.filter(|f| !f.is_noop()).map(|fault| ClockState {
            fault,
            jitter_rng: Gaussian::new(fault_seed ^ 0x0C10_CC00),
            drop_rng: Rng64::new(fault_seed ^ 0x0D20_9ED5),
        });
    }

    /// Installs a sample-clock fault unconditionally — even a currently-noop
    /// parameterisation — creating its private streams at `fault_seed`.
    ///
    /// Unlike [`Sampler::inject_clock_fault`], an installed noop fault still
    /// consumes one drop-decision draw per conversion, so a time-varying
    /// plan that starts at severity 0 keeps chunk-invariant stream
    /// positions. A zero-severity installed fault is bit-identical to the
    /// clean path (`chance(0)` never fires, zero jitter draws nothing).
    pub fn install_clock_fault(&mut self, fault: ClockFault, fault_seed: u64) {
        self.clock = Some(ClockState {
            fault,
            jitter_rng: Gaussian::new(fault_seed ^ 0x0C10_CC00),
            drop_rng: Rng64::new(fault_seed ^ 0x0D20_9ED5),
        });
    }

    /// Updates an installed clock fault's parameters in place, preserving
    /// both private stream positions. Does nothing when no fault is
    /// installed — severity profiles must [`Sampler::install_clock_fault`]
    /// first.
    pub fn set_clock_fault_params(&mut self, fault: ClockFault) {
        if let Some(clock) = &mut self.clock {
            clock.fault = fault;
        }
    }

    /// kT/C noise standard deviation (V) of one sample.
    pub fn ktc_sigma(&self) -> f64 {
        (kt() / self.c_sample_f).sqrt()
    }

    /// Decides the acquisition instant for output sample `i`, consuming
    /// exactly the random draws the batch [`Sampler::sample`] path makes
    /// for that sample: the intrinsic aperture-jitter draw, the fault
    /// jitter draw, and the drop decision, in that order. Returns `None`
    /// when the conversion is dropped — the caller conceals the dropout by
    /// holding the last acquired value. The returned instant is *not*
    /// clamped to the record start; callers interpolate at `t.max(0.0)`.
    pub fn acquisition_instant(&mut self, i: u64) -> Option<f64> {
        let mut t = i as f64 / self.fs;
        if self.jitter_s > 0.0 {
            t += self.noise.sample_scaled(self.jitter_s);
        }
        if let Some(clock) = &mut self.clock {
            if clock.fault.jitter_periods > 0.0 {
                let sigma_t = clock.fault.jitter_periods / self.fs;
                t += clock.jitter_rng.sample_scaled(sigma_t);
            }
            if clock.drop_rng.chance(clock.fault.drop_prob) {
                return None;
            }
        }
        Some(t)
    }

    /// Completes one acquisition: adds the kT/C thermal-noise draw to an
    /// interpolated proxy value `v`. Split from [`Sampler::acquisition_instant`]
    /// so a streaming caller can decide the instant first, wait until the
    /// proxy data covering it arrives, then acquire — the noise draw
    /// happens only once the value is computed, preserving batch draw
    /// order.
    pub fn acquire(&mut self, v: f64) -> f64 {
        v + self.noise.sample_scaled(self.ktc_sigma())
    }

    /// Samples a continuous-time proxy record (`x` at rate `f_ct`) at this
    /// sampler's rate, returning the discrete-time samples.
    pub fn sample(&mut self, x: &[f64], f_ct: f64) -> Vec<f64> {
        assert!(f_ct > 0.0, "proxy rate must be positive");
        let duration = x.len() as f64 / f_ct;
        let n_out = (duration * self.fs).floor() as usize;
        let mut out = Vec::with_capacity(n_out);
        let mut held = 0.0;
        for i in 0..n_out {
            if let Some(t) = self.acquisition_instant(i as u64) {
                held = self.acquire(sample_at(x, f_ct, t.max(0.0)));
            }
            out.push(held);
        }
        out
    }

    /// The Table II power model for the S&H.
    pub fn power_model(&self) -> SampleHoldModel {
        SampleHoldModel
    }

    /// Convenience: the S&H power draw.
    pub fn power(&self, tech: &TechnologyParams, design: &DesignParams) -> Watts {
        use efficsense_power::PowerModel as _;
        self.power_model().power(tech, design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efficsense_dsp::spectrum::sine;
    use efficsense_dsp::stats::std_dev;

    #[test]
    fn output_length_matches_duration() {
        let mut s = Sampler::new(537.6, 1e-12, 0.0, 1);
        let x = vec![0.0; 8192];
        let y = s.sample(&x, 8192.0); // 1 second
        assert_eq!(y.len(), 537);
    }

    #[test]
    fn ktc_sigma_value() {
        let s = Sampler::new(537.6, 1e-12, 0.0, 1);
        // kT/C at 1 pF, 300 K → ~64 µV.
        let sigma = s.ktc_sigma();
        assert!((sigma - 64e-6).abs() < 2e-6, "kT/C sigma {sigma}");
    }

    #[test]
    fn samples_track_slow_signal() {
        let f_ct = 8192.0;
        let mut s = Sampler::new(537.6, 1e-9, 0.0, 2); // big cap → tiny noise
        let x = sine(16384, f_ct, 10.0, 1.0, 0.0);
        let y = s.sample(&x, f_ct);
        let expect = sine(y.len(), 537.6, 10.0, 1.0, 0.0);
        let err: f64 = y
            .iter()
            .zip(&expect)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / y.len() as f64;
        assert!(err.sqrt() < 0.01, "tracking error {}", err.sqrt());
    }

    #[test]
    fn noise_floor_follows_cap_size() {
        let f_ct = 4096.0;
        let x = vec![0.0; 40960];
        let mut small = Sampler::new(537.6, 0.1e-12, 0.0, 3);
        let mut large = Sampler::new(537.6, 10e-12, 0.0, 3);
        let ys = small.sample(&x, f_ct);
        let yl = large.sample(&x, f_ct);
        let ratio = std_dev(&ys) / std_dev(&yl);
        assert!(
            (ratio - 10.0).abs() < 1.5,
            "noise ratio {ratio} (expect 10)"
        );
    }

    #[test]
    fn jitter_degrades_fast_signals_only() {
        let f_ct = 65536.0;
        let x_fast = sine(65536, f_ct, 200.0, 1.0, 0.0);
        let jitter = 100e-6; // deliberately huge for visibility
        let mut jittered = Sampler::new(537.6, 1e-9, jitter, 5);
        let y = jittered.sample(&x_fast, f_ct);
        let clean = sine(y.len(), 537.6, 200.0, 1.0, 0.0);
        let err: Vec<f64> = y.iter().zip(&clean).map(|(a, b)| a - b).collect();
        // Predicted jitter error rms ≈ 2π·f·σ_t·A/√2.
        let predicted = std::f64::consts::TAU * 200.0 * jitter / 2f64.sqrt();
        let measured = std_dev(&err);
        assert!(
            (measured / predicted - 1.0).abs() < 0.4,
            "{measured} vs {predicted}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let x = sine(8192, 8192.0, 20.0, 1.0, 0.0);
        let mut a = Sampler::new(537.6, 1e-12, 1e-6, 11);
        let mut b = Sampler::new(537.6, 1e-12, 1e-6, 11);
        assert_eq!(a.sample(&x, 8192.0), b.sample(&x, 8192.0));
    }

    #[test]
    fn power_positive() {
        let s = Sampler::new(537.6, 1e-12, 0.0, 0);
        let p = s
            .power(
                &TechnologyParams::gpdk045(),
                &DesignParams::paper_defaults(8),
            )
            .value();
        assert!(p > 0.0);
    }

    #[test]
    #[should_panic(expected = "capacitor")]
    fn rejects_zero_cap() {
        let _ = Sampler::new(537.6, 0.0, 0.0, 0);
    }

    #[test]
    fn noop_clock_fault_is_bit_identical_to_clean() {
        let x = sine(8192, 8192.0, 20.0, 1.0, 0.0);
        let mut clean = Sampler::new(537.6, 1e-12, 1e-6, 11);
        let mut faulted = Sampler::new(537.6, 1e-12, 1e-6, 11);
        faulted.inject_clock_fault(
            Some(ClockFault {
                jitter_periods: 0.0,
                drop_prob: 0.0,
            }),
            99,
        );
        assert_eq!(clean.sample(&x, 8192.0), faulted.sample(&x, 8192.0));
    }

    #[test]
    fn certain_drops_hold_the_initial_value() {
        let x = sine(8192, 8192.0, 20.0, 1.0, 0.0);
        let mut s = Sampler::new(537.6, 1e-12, 0.0, 11);
        s.inject_clock_fault(
            Some(ClockFault {
                jitter_periods: 0.0,
                drop_prob: 1.0,
            }),
            7,
        );
        let y = s.sample(&x, 8192.0);
        // lint:allow(float-eq) — the held value is bit-exactly the initial 0.0
        assert!(y.iter().all(|&v| v == 0.0), "every sample dropped → held 0");
    }

    #[test]
    fn drops_conceal_without_changing_length() {
        let x = sine(8192, 8192.0, 20.0, 1.0, 0.0);
        let mut clean = Sampler::new(537.6, 1e-9, 0.0, 11);
        let mut lossy = Sampler::new(537.6, 1e-9, 0.0, 11);
        lossy.inject_clock_fault(
            Some(ClockFault {
                jitter_periods: 0.0,
                drop_prob: 0.3,
            }),
            7,
        );
        let yc = clean.sample(&x, 8192.0);
        let yl = lossy.sample(&x, 8192.0);
        assert_eq!(yc.len(), yl.len());
        let repeats = yl.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > yl.len() / 10, "held samples visible: {repeats}");
    }

    #[test]
    fn fault_jitter_degrades_like_intrinsic_jitter() {
        let f_ct = 65536.0;
        let x_fast = sine(65536, f_ct, 200.0, 1.0, 0.0);
        let mut s = Sampler::new(537.6, 1e-9, 0.0, 5);
        // 0.05 sample periods at 537.6 Hz ≈ 93 µs RMS.
        s.inject_clock_fault(
            Some(ClockFault {
                jitter_periods: 0.05,
                drop_prob: 0.0,
            }),
            5,
        );
        let y = s.sample(&x_fast, f_ct);
        let clean = sine(y.len(), 537.6, 200.0, 1.0, 0.0);
        let err: Vec<f64> = y.iter().zip(&clean).map(|(a, b)| a - b).collect();
        let sigma_t = 0.05 / 537.6;
        let predicted = std::f64::consts::TAU * 200.0 * sigma_t / 2f64.sqrt();
        let measured = std_dev(&err);
        assert!(
            (measured / predicted - 1.0).abs() < 0.4,
            "{measured} vs {predicted}"
        );
    }

    #[test]
    fn installed_zero_severity_clock_fault_is_bit_identical_to_clean() {
        let x = sine(8192, 8192.0, 20.0, 1.0, 0.0);
        let mut clean = Sampler::new(537.6, 1e-12, 1e-6, 11);
        let mut armed = Sampler::new(537.6, 1e-12, 1e-6, 11);
        armed.install_clock_fault(
            ClockFault {
                jitter_periods: 0.0,
                drop_prob: 0.0,
            },
            99,
        );
        assert_eq!(clean.sample(&x, 8192.0), armed.sample(&x, 8192.0));
    }

    #[test]
    fn set_clock_fault_params_preserves_stream_positions() {
        let noop = ClockFault {
            jitter_periods: 0.0,
            drop_prob: 0.0,
        };
        let hot = ClockFault {
            jitter_periods: 0.1,
            drop_prob: 0.3,
        };
        let x = sine(16384, 8192.0, 20.0, 1.0, 0.0);
        // Whole-buffer and split paths flip params at the same output
        // sample; outputs must match bit-exactly.
        let mut whole = Sampler::new(537.6, 1e-12, 0.0, 11);
        whole.install_clock_fault(noop, 42);
        let mut y_whole = whole.sample(&x[..8192], 8192.0);
        whole.set_clock_fault_params(hot);
        y_whole.extend(whole.sample(&x[8192..], 8192.0));

        let mut split = Sampler::new(537.6, 1e-12, 0.0, 11);
        split.install_clock_fault(noop, 42);
        let mut y_split = split.sample(&x[..8192], 8192.0);
        split.set_clock_fault_params(hot);
        y_split.extend(split.sample(&x[8192..], 8192.0));
        assert_eq!(y_whole, y_split);
        // The hot phase actually drops conversions (held repeats appear).
        let repeats = y_whole[537..].windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 50, "held samples visible: {repeats}");
    }

    #[test]
    fn split_acquisition_matches_batch_sample() {
        use efficsense_dsp::resample::sample_at;
        let x = sine(16384, 8192.0, 20.0, 1.0, 0.0);
        let mut batch = Sampler::new(537.6, 1e-12, 1e-6, 11);
        batch.inject_clock_fault(
            Some(ClockFault {
                jitter_periods: 0.1,
                drop_prob: 0.2,
            }),
            42,
        );
        let y_batch = batch.sample(&x, 8192.0);

        let mut split = Sampler::new(537.6, 1e-12, 1e-6, 11);
        split.inject_clock_fault(
            Some(ClockFault {
                jitter_periods: 0.1,
                drop_prob: 0.2,
            }),
            42,
        );
        let mut y_split = Vec::new();
        let mut held = 0.0;
        for i in 0..y_batch.len() {
            if let Some(t) = split.acquisition_instant(i as u64) {
                held = split.acquire(sample_at(&x, 8192.0, t.max(0.0)));
            }
            y_split.push(held);
        }
        assert_eq!(y_batch, y_split);
    }

    #[test]
    fn clock_fault_deterministic_per_seed() {
        let x = sine(8192, 8192.0, 20.0, 1.0, 0.0);
        let fault = ClockFault {
            jitter_periods: 0.1,
            drop_prob: 0.2,
        };
        let mut a = Sampler::new(537.6, 1e-12, 0.0, 11);
        let mut b = Sampler::new(537.6, 1e-12, 0.0, 11);
        a.inject_clock_fault(Some(fault), 42);
        b.inject_clock_fault(Some(fault), 42);
        assert_eq!(a.sample(&x, 8192.0), b.sample(&x, 8192.0));
    }
}
