//! Property-style tests for the behavioural block library.
//!
//! Each test runs a Monte-Carlo loop over per-case seeds from
//! [`efficsense_rng::Rng64`], so every failure reproduces from its printed
//! case number.

use efficsense_blocks::cs_frontend::{ChargeSharingEncoder, EncoderImperfections};
use efficsense_blocks::{ActiveCsEncoder, Lna, SarAdc};
use efficsense_cs::matrix::SensingMatrix;
use efficsense_power::{DesignParams, TechnologyParams};
use efficsense_rng::Rng64;

const CASES: u64 = 64;

#[test]
fn adc_output_within_half_lsb_plus_noise() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xADC0 + case);
        let bits = g.range(4, 12) as u32;
        let v = g.uniform(-1.0, 1.0);
        let mut adc = SarAdc::ideal(bits, 2.0);
        let out = adc.process(v);
        let lsb = 2.0 / (1u64 << bits) as f64;
        assert!(
            (out - v).abs() <= lsb,
            "case {case}: error {} > lsb {lsb}",
            (out - v).abs()
        );
    }
}

#[test]
fn adc_codes_cover_full_range() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xADC1 + case);
        let bits = g.range(2, 10) as u32;
        let mut adc = SarAdc::ideal(bits, 2.0);
        assert_eq!(adc.quantize(-1.5), 0, "case {case}");
        assert_eq!(adc.quantize(1.5) as u64, (1u64 << bits) - 1, "case {case}");
    }
}

#[test]
fn adc_monotone_in_input() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xADC2 + case);
        let bits = g.range(4, 10) as u32;
        let a = g.uniform(-1.0, 1.0);
        let b = g.uniform(-1.0, 1.0);
        let mut adc = SarAdc::ideal(bits, 2.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(adc.quantize(lo) <= adc.quantize(hi), "case {case}");
    }
}

#[test]
fn adc_reconstruct_inverts_quantize_monotonically() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xADC3 + case);
        let bits = g.range(2, 12) as u32;
        let code_frac = g.f64();
        let adc = SarAdc::ideal(bits, 2.0);
        let steps = (1u64 << bits) as u32;
        let code = ((steps - 1) as f64 * code_frac) as u32;
        let v = adc.reconstruct(code);
        assert!(v > -1.0 && v < 1.0, "case {case}");
        if code > 0 {
            assert!(v > adc.reconstruct(code - 1), "case {case}");
        }
    }
}

#[test]
fn lna_output_never_exceeds_clip() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x17A0 + case);
        let gain = g.uniform(1.0, 10_000.0);
        let v_clip = g.uniform(0.1, 2.0);
        let len = g.range(10, 100);
        let inputs: Vec<f64> = (0..len).map(|_| g.uniform(-0.01, 0.01)).collect();
        let mut lna = Lna::new(gain, 1e-6, 768.0, 0.1, v_clip, 8192.0, 1);
        for &v in &inputs {
            let y = lna.process(v);
            assert!(y.abs() <= v_clip + 1e-12, "case {case}");
            assert!(y.is_finite(), "case {case}");
        }
    }
}

#[test]
fn passive_encoder_output_bounded_by_input_peak() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x9A55 + case);
        let seed = g.next_u64();
        let scale = g.uniform(0.01, 1.0);
        // Charge sharing only ever interpolates: no hold voltage can exceed
        // the largest (noiseless) input sample magnitude.
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let phi = SensingMatrix::srbm(8, 32, 2, seed);
        let mut enc = ChargeSharingEncoder::new(
            phi,
            0.1e-12,
            0.5e-12,
            1.0 / design.f_sample_hz(),
            EncoderImperfections::ideal(),
            &tech,
            &design,
            seed,
        );
        let x: Vec<f64> = (0..32)
            .map(|i| scale * ((i * 11 % 7) as f64 - 3.0) / 3.0)
            .collect();
        let peak = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let y = enc.encode_frame(&x);
        for v in y {
            assert!(v.abs() <= peak + 1e-12, "case {case}");
        }
    }
}

#[test]
fn passive_encoder_is_linear() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x11EA + case);
        let seed = g.next_u64();
        let a = g.uniform(-2.0, 2.0);
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let make = || {
            ChargeSharingEncoder::new(
                SensingMatrix::srbm(8, 32, 2, 3),
                0.1e-12,
                0.5e-12,
                1.0 / design.f_sample_hz(),
                EncoderImperfections::ideal(),
                &tech,
                &design,
                seed,
            )
        };
        let x: Vec<f64> = (0..32)
            .map(|i| ((i * 13 % 11) as f64 - 5.0) / 5.0)
            .collect();
        let ax: Vec<f64> = x.iter().map(|v| a * v).collect();
        let y1 = make().encode_frame(&x);
        let y2 = make().encode_frame(&ax);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((a * u - v).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn active_encoder_matches_phi_without_leak() {
    for case in 0..CASES {
        let seed = Rng64::new(0xAC7E + case).next_u64();
        let phi = SensingMatrix::srbm(8, 32, 2, seed);
        let mut enc = ActiveCsEncoder::new(phi.clone(), 1e-12, 1e12, false, seed);
        let x: Vec<f64> = (0..32).map(|i| ((i * 3 % 13) as f64 - 6.0) / 6.0).collect();
        let y = enc.encode_frame(&x);
        let expect = phi.apply(&x);
        for (u, v) in y.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-9, "case {case}");
        }
    }
}
