//! Property-based tests for the behavioural block library.

use efficsense_blocks::cs_frontend::{ChargeSharingEncoder, EncoderImperfections};
use efficsense_blocks::{ActiveCsEncoder, Lna, SarAdc};
use efficsense_cs::matrix::SensingMatrix;
use efficsense_power::{DesignParams, TechnologyParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adc_output_within_half_lsb_plus_noise(
        bits in 4u32..12,
        v in -1.0f64..1.0,
    ) {
        let mut adc = SarAdc::ideal(bits, 2.0);
        let out = adc.process(v);
        let lsb = 2.0 / (1u64 << bits) as f64;
        prop_assert!((out - v).abs() <= lsb, "error {} > lsb {lsb}", (out - v).abs());
    }

    #[test]
    fn adc_codes_cover_full_range(bits in 2u32..10) {
        let mut adc = SarAdc::ideal(bits, 2.0);
        prop_assert_eq!(adc.quantize(-1.5), 0);
        prop_assert_eq!(adc.quantize(1.5) as u64, (1u64 << bits) - 1);
    }

    #[test]
    fn adc_monotone_in_input(bits in 4u32..10, a in -1.0f64..1.0, b in -1.0f64..1.0) {
        let mut adc = SarAdc::ideal(bits, 2.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(adc.quantize(lo) <= adc.quantize(hi));
    }

    #[test]
    fn adc_reconstruct_inverts_quantize_monotonically(bits in 2u32..12, code_frac in 0.0f64..1.0) {
        let adc = SarAdc::ideal(bits, 2.0);
        let steps = (1u64 << bits) as u32;
        let code = ((steps - 1) as f64 * code_frac) as u32;
        let v = adc.reconstruct(code);
        prop_assert!(v > -1.0 && v < 1.0);
        if code > 0 {
            prop_assert!(v > adc.reconstruct(code - 1));
        }
    }

    #[test]
    fn lna_output_never_exceeds_clip(
        gain in 1.0f64..10_000.0,
        v_clip in 0.1f64..2.0,
        inputs in proptest::collection::vec(-0.01f64..0.01, 10..100),
    ) {
        let mut lna = Lna::new(gain, 1e-6, 768.0, 0.1, v_clip, 8192.0, 1);
        for &v in &inputs {
            let y = lna.process(v);
            prop_assert!(y.abs() <= v_clip + 1e-12);
            prop_assert!(y.is_finite());
        }
    }

    #[test]
    fn passive_encoder_output_bounded_by_input_peak(
        seed in any::<u64>(),
        scale in 0.01f64..1.0,
    ) {
        // Charge sharing only ever interpolates: no hold voltage can exceed
        // the largest (noiseless) input sample magnitude.
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let phi = SensingMatrix::srbm(8, 32, 2, seed);
        let mut enc = ChargeSharingEncoder::new(
            phi,
            0.1e-12,
            0.5e-12,
            1.0 / design.f_sample_hz(),
            EncoderImperfections::ideal(),
            &tech,
            &design,
            seed,
        );
        let x: Vec<f64> = (0..32).map(|i| scale * ((i * 11 % 7) as f64 - 3.0) / 3.0).collect();
        let peak = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let y = enc.encode_frame(&x);
        for v in y {
            prop_assert!(v.abs() <= peak + 1e-12);
        }
    }

    #[test]
    fn passive_encoder_is_linear(
        seed in any::<u64>(),
        a in -2.0f64..2.0,
    ) {
        let tech = TechnologyParams::gpdk045();
        let design = DesignParams::paper_defaults(8);
        let make = || {
            ChargeSharingEncoder::new(
                SensingMatrix::srbm(8, 32, 2, 3),
                0.1e-12,
                0.5e-12,
                1.0 / design.f_sample_hz(),
                EncoderImperfections::ideal(),
                &tech,
                &design,
                seed,
            )
        };
        let x: Vec<f64> = (0..32).map(|i| ((i * 13 % 11) as f64 - 5.0) / 5.0).collect();
        let ax: Vec<f64> = x.iter().map(|v| a * v).collect();
        let y1 = make().encode_frame(&x);
        let y2 = make().encode_frame(&ax);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((a * u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn active_encoder_matches_phi_without_leak(
        seed in any::<u64>(),
    ) {
        let phi = SensingMatrix::srbm(8, 32, 2, seed);
        let mut enc = ActiveCsEncoder::new(phi.clone(), 1e-12, 1e12, false, seed);
        let x: Vec<f64> = (0..32).map(|i| ((i * 3 % 13) as f64 - 6.0) / 6.0).collect();
        let y = enc.encode_frame(&x);
        let expect = phi.apply(&x);
        for (u, v) in y.iter().zip(&expect) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }
}
