//! The paper's Fig. 3 walk-through: a behavioural LNA model showing gain,
//! noise, bandwidth, nonlinearity and clipping — and how the same design
//! variables drive its analytical power model.
//!
//! Run: `cargo run --release --example lna_model`

use efficsense::blocks::Lna;
use efficsense::dsp::metrics::{sndr_db, thd_db};
use efficsense::dsp::spectrum::{coherent_frequency, sine};
use efficsense::dsp::stats::{peak, rms};
use efficsense::power::{DesignParams, TechnologyParams};

fn main() {
    let tech = TechnologyParams::gpdk045();
    let design = DesignParams::paper_defaults(8);
    let f_ct = 16384.0;
    let f0 = coherent_frequency(64.0, f_ct, 65536);

    println!("=== behavioural model: gain / noise / bandwidth / clipping ===");
    for (label, amp, noise, k3) in [
        ("small signal, quiet", 100e-6, 1e-6, 0.01),
        ("small signal, noisy LNA", 100e-6, 10e-6, 0.01),
        ("large signal (compression)", 400e-6, 1e-6, 0.05),
        ("overdrive (clipping)", 2000e-6, 1e-6, 0.05),
    ] {
        let mut lna = Lna::from_design(&design, 2000.0, noise, k3, f_ct, 42);
        let x = sine(65536, f_ct, f0, amp, 0.0);
        let y = lna.process_buffer(&x);
        let settled = &y[16384..];
        println!(
            "{label:<28} in {:>7.0} µV  out rms {:>7.1} mV  peak {:>7.1} mV  SNDR {:>6.1} dB  THD {:>6.1} dB",
            amp * 1e6,
            rms(settled) * 1e3,
            peak(settled) * 1e3,
            sndr_db(settled, f_ct, f0),
            thd_db(settled, f_ct, f0, 5)
        );
    }

    println!("\n=== the same variables drive the Table II power bound ===");
    for noise_uv in [1.0, 2.0, 5.0, 10.0, 20.0] {
        let lna = Lna::from_design(&design, 2000.0, noise_uv * 1e-6, 0.01, f_ct, 0);
        let p = lna.power(1e-12, &tech, &design).value();
        println!(
            "  noise floor {noise_uv:>5.1} µV → LNA power {:>10.3} µW",
            p * 1e6
        );
    }
    println!("\nNoise-limited power falls with the square of the tolerated noise floor,");
    println!("until the load-charging bound takes over — the core trade-off that the");
    println!("compressive-sensing front-end exploits (paper Section IV).");
}
