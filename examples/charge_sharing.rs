//! The passive charge-sharing CS encoder of paper Section III: Eq. (1)
//! weights, the behavioural capacitor network, and reconstruction through
//! the effective matrix.
//!
//! Run: `cargo run --release --example charge_sharing`

use efficsense::cs::basis::Basis;
use efficsense::cs::charge_sharing::{effective_matrix, eq1_weights, Accumulator};
use efficsense::cs::matrix::SensingMatrix;
use efficsense::cs::recon::{reconstruct_with_dictionary, OmpConfig};
use efficsense::dsp::metrics::prd_percent;

fn main() {
    let c_sample = 0.2e-12;
    let c_hold = 1.0e-12;

    println!("=== Eq. (1): geometric weighting of charge-shared samples ===");
    let inputs = [1.0, -0.5, 0.25, 0.8, -0.3];
    let mut acc = Accumulator::new(c_sample, c_hold);
    for v in inputs {
        acc.accumulate(v);
    }
    let w = eq1_weights(inputs.len(), c_sample, c_hold);
    let analytic: f64 = inputs.iter().zip(&w).map(|(v, w)| v * w).sum();
    println!("  weights: {w:?}");
    println!("  behavioural hold voltage: {:.6} V", acc.voltage());
    println!("  Eq. (1) analytic sum:     {analytic:.6} V");
    println!("  (older samples decay by C_hold/(C_sample+C_hold) per share)");

    println!("\n=== a full frame: s-SRBM schedule through the capacitor bank ===");
    let n = 128;
    let m = 48;
    let phi = SensingMatrix::srbm(m, n, 2, 7);
    // An EEG-like frame: two low-frequency tones (sparse in the DCT basis).
    let x: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            0.3 * (2.0 * std::f64::consts::PI * 3.0 * t).sin()
                + 0.2 * (2.0 * std::f64::consts::PI * 7.0 * t).cos()
        })
        .collect();
    // Behavioural encoding: one accumulator per measurement row.
    let mut accs = vec![Accumulator::new(c_sample, c_hold); m];
    for (j, &v) in x.iter().enumerate() {
        for &r in phi.column_rows(j) {
            accs[r].accumulate(v);
        }
    }
    let y: Vec<f64> = accs.iter().map(|a| a.voltage()).collect();
    println!("  frame of {n} samples → {m} passive measurements");

    // The decoder folds the known weights into an effective matrix.
    let eff = effective_matrix(&phi, c_sample, c_hold);
    let dict = eff.matmul(&Basis::Dct.matrix(n));
    let xh = reconstruct_with_dictionary(&dict, &y, Basis::Dct, &OmpConfig::with_sparsity(8));
    println!("  reconstruction PRD: {:.2} %", prd_percent(&x, &xh));
    println!("  (OMP on A = Φ_eff·Ψ recovers the frame from passive sums alone)");

    println!("\n=== why the effective matrix matters ===");
    let naive_dict = phi.to_dense().matmul(&Basis::Dct.matrix(n));
    let xh_naive =
        reconstruct_with_dictionary(&naive_dict, &y, Basis::Dct, &OmpConfig::with_sparsity(8));
    println!(
        "  decoding with the *binary* Φ (ignoring charge-sharing decay): PRD {:.2} %",
        prd_percent(&x, &xh_naive)
    );
    println!(
        "  decoding with the *effective* Φ:                           PRD {:.2} %",
        { prd_percent(&x, &xh) }
    );
}
