//! EffiCSense on a second application: compressive acquisition of ECG.
//!
//! The paper's Table I claims the framework is *not* application-specific;
//! this example swaps the EEG corpus for synthetic ECG and re-runs the same
//! architectural comparison with the PRD reconstruction metric (the standard
//! compressed-biosignal quality figure), plus the power models unchanged.
//!
//! Run: `cargo run --release --example ecg_compression`

use efficsense::core::config::{CsConfig, SystemConfig};
use efficsense::core::simulate::Simulator;
use efficsense::dsp::metrics::prd_percent;
use efficsense::power::fom::system_fom;
use efficsense::power::Watts;
use efficsense::signals::ecg::{EcgGenerator, EcgParams};

fn main() {
    // ECG at the framework's front-end rate regime: the Table III design
    // parameters stay untouched — only the input signal changes.
    let mut gen = EcgGenerator::new(EcgParams::default(), 11);
    let fs_in = 360.0;
    let record = gen.record(fs_in, 12.0);
    println!(
        "synthetic ECG: {:.0} s at {fs_in} Hz, 70 bpm",
        record.len() as f64 / fs_in
    );

    println!(
        "\n{:<28} {:>10} {:>12} {:>16}",
        "architecture", "PRD (%)", "power (µW)", "FOM (pJ/step)"
    );
    let mut base_cfg = SystemConfig::baseline(8);
    // ECG is ~10x larger than EEG; drop the gain accordingly.
    base_cfg.lna.gain = 400.0;
    base_cfg.lna.noise_floor_vrms = 4e-6;
    let sim = Simulator::new(base_cfg).expect("valid");
    let out = sim.run(&record, fs_in, 1);
    let prd = prd_percent(&out.reference, &out.input_referred);
    let fom = system_fom(Watts(out.total_power_w()), 8.0, out.fs_out);
    println!(
        "{:<28} {:>10.2} {:>12.3} {:>16.2}",
        "baseline (Nyquist)",
        prd,
        out.total_power_w() * 1e6,
        fom.value() * 1e12
    );

    for m in [96usize, 150, 192] {
        let mut cfg = SystemConfig::compressive(
            8,
            CsConfig {
                m,
                omp_sparsity: 2 * m / 5,
                ..Default::default()
            },
        );
        cfg.lna.gain = 400.0;
        cfg.lna.noise_floor_vrms = 4e-6;
        let sim = Simulator::new(cfg).expect("valid");
        let out = sim.run(&record, fs_in, 1);
        let prd = prd_percent(&out.reference, &out.input_referred);
        let fom = system_fom(Watts(out.total_power_w()), 8.0, out.fs_out);
        println!(
            "{:<28} {:>10.2} {:>12.3} {:>16.2}",
            format!("CS (M={m}, N_Φ=384)"),
            prd,
            out.total_power_w() * 1e6,
            fom.value() * 1e12
        );
    }

    println!("\nECG's sharp QRS complexes are *less* DCT-compressible than rhythmic");
    println!("EEG, so reconstruction PRD degrades faster with compression — the kind");
    println!("of application-dependent conclusion the pathfinding framework exists");
    println!("to surface before silicon is committed.");
}
