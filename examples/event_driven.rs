//! Event-driven (level-crossing) acquisition vs Nyquist sampling on EEG —
//! the comparison of the authors' companion study (paper reference [15]),
//! built from the same block library.
//!
//! Run: `cargo run --release --example event_driven`

use efficsense::blocks::lc_adc::LcAdc;
use efficsense::dsp::metrics::snr_fit_db;
use efficsense::power::{BlockKind, DesignParams, TechnologyParams};
use efficsense::signals::{DatasetConfig, EegClass, EegDataset};

fn main() {
    let tech = TechnologyParams::gpdk045();
    let design = DesignParams::paper_defaults(8);
    let gain = 4000.0;
    let ds = EegDataset::generate(&DatasetConfig {
        records_per_class: 3,
        duration_s: 8.0,
        ..Default::default()
    });

    println!(
        "{:<12} {:>12} {:>14} {:>12} {:>12}",
        "class", "events/s", "Nyquist wps", "LC SNR dB", "LC TX µW"
    );
    for class in [EegClass::Normal, EegClass::Interictal, EegClass::Seizure] {
        let mut rate_sum = 0.0;
        let mut snr_sum = 0.0;
        let mut tx_sum = 0.0;
        let mut n = 0.0;
        for r in ds.by_class(class) {
            // Amplify to ADC scale, as the front-end would.
            let x: Vec<f64> = r.samples.iter().map(|v| v * gain).collect();
            let mut adc = LcAdc::new(8, design.v_fs, 0.25);
            let events = adc.convert(&x);
            let rate = events.len() as f64 / r.duration_s();
            let recon = adc.reconstruct(&events, x.len());
            let b = adc.power_breakdown(rate, &tech, &design);
            rate_sum += rate;
            snr_sum += snr_fit_db(&x, &recon).min(60.0);
            tx_sum += b.get(BlockKind::Transmitter).value() * 1e6;
            n += 1.0;
        }
        println!(
            "{:<12} {:>12.1} {:>14.1} {:>12.1} {:>12.3}",
            class.to_string(),
            rate_sum / n,
            design.f_sample_hz(),
            snr_sum / n,
            tx_sum / n
        );
    }
    let nyquist_tx = design.f_sample_hz() * design.n_bits as f64 * tech.e_bit_j * 1e6;
    println!("\nNyquist-rate transmitter power for comparison: {nyquist_tx:.3} µW");
    println!("Event-driven conversion makes data rate track signal *activity*:");
    println!("quiet background EEG ships far fewer events than Nyquist words, while");
    println!("high-amplitude seizures push the event rate (and TX power) back up —");
    println!("the activity-dependence trade-off of the authors' TBioCAS 2020 study.");
}
