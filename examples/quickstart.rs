//! Quickstart: simulate one EEG record through both sensor front-end
//! architectures and compare signal quality, power and area.
//!
//! Run: `cargo run --release --example quickstart`

use efficsense::core::config::{CsConfig, SystemConfig};
use efficsense::core::simulate::Simulator;
use efficsense::dsp::metrics::snr_fit_db;
use efficsense::signals::{DatasetConfig, EegDataset};

fn main() {
    // A small synthetic Bonn-like EEG corpus (deterministic).
    let dataset = EegDataset::generate(&DatasetConfig {
        records_per_class: 1,
        duration_s: 8.0,
        ..Default::default()
    });
    let record = &dataset.records[0];
    println!(
        "record #{} ({}): {:.1} s at {} Hz",
        record.id,
        record.class,
        record.duration_s(),
        record.fs
    );

    // Architecture 1: classical LNA → S/H → SAR ADC → transmitter.
    let baseline = Simulator::new(SystemConfig::baseline(8)).expect("valid config");
    let out_b = baseline.run(&record.samples, record.fs, 1);

    // Architecture 2: passive charge-sharing compressive sensing.
    let cs_cfg = SystemConfig::compressive(
        8,
        CsConfig {
            m: 96,
            ..Default::default()
        },
    );
    let cs = Simulator::new(cs_cfg).expect("valid config");
    let out_c = cs.run(&record.samples, record.fs, 1);

    println!("\n=== baseline ===");
    println!(
        "SNR: {:.1} dB",
        snr_fit_db(&out_b.reference, &out_b.input_referred)
    );
    println!("words sent: {}", out_b.words);
    println!("area: {:.0} C_u,min", out_b.area_units);
    println!("{}", out_b.power);

    println!("\n=== compressive sensing (M=96, N_Φ=384) ===");
    println!(
        "SNR: {:.1} dB",
        snr_fit_db(&out_c.reference, &out_c.input_referred)
    );
    println!("words sent: {}", out_c.words);
    println!("area: {:.0} C_u,min", out_c.area_units);
    println!("{}", out_c.power);

    println!(
        "\nCS sends {:.1}x fewer words and consumes {:.2}x less power here.",
        out_b.words as f64 / out_c.words as f64,
        out_b.total_power_w() / out_c.total_power_w()
    );
}
