//! End-to-end architectural pathfinding for epilepsy detection — a scaled-
//! down version of the paper's Section IV experiment: generate the corpus,
//! train the detection goal function, sweep a small design space over both
//! architectures, and pick the power-optimal design at ≥ 98 % accuracy.
//!
//! Run: `cargo run --release --example epilepsy_pathfinding`

use efficsense::core::pareto::{optimal_under_constraint, pareto_front, Objective};
use efficsense::core::prelude::*;
use efficsense::core::sweep::{split_by_architecture, Metric};

fn main() {
    // Step 4 of the flow: insert (synthetic) sensor data.
    let dataset = EegDataset::generate(&DatasetConfig {
        records_per_class: 4,
        duration_s: 6.0,
        ..Default::default()
    });
    println!("dataset: {} records, 3 classes", dataset.len());

    // Steps 1–3 are embodied by the design space template (block models +
    // power models + technology).
    let space = DesignSpace {
        lna_noise_vrms: efficsense::core::space::log_grid(1e-6, 20e-6, 4),
        n_bits: vec![8],
        cs_m: vec![96],
        cs_s: vec![2],
        cs_c_hold_f: vec![1e-12],
        ..DesignSpace::paper_defaults()
    };
    println!("design space: {} points (baseline + CS)", space.len());

    // Step 5: choose the goal function (detection accuracy) and sweep.
    let sweep = Sweep::new(SweepConfig {
        metric: Metric::DetectionAccuracy,
        ..Default::default()
    });
    let results = sweep.run(&space, &dataset);

    println!("\nall evaluated points:");
    print!("{}", efficsense::core::report::text_table(&results));

    let (base, cs) = split_by_architecture(&results);
    let base: Vec<SweepResult> = base.into_iter().cloned().collect();
    let cs: Vec<SweepResult> = cs.into_iter().cloned().collect();

    println!("\nbaseline Pareto front (accuracy vs power):");
    for r in pareto_front(&base, Objective::MaximizeMetric) {
        println!("  {:>9.3} µW  accuracy {:.3}", r.power_w * 1e6, r.metric);
    }
    println!("CS Pareto front (accuracy vs power):");
    for r in pareto_front(&cs, Objective::MaximizeMetric) {
        println!("  {:>9.3} µW  accuracy {:.3}", r.power_w * 1e6, r.metric);
    }

    match (
        optimal_under_constraint(&base, 0.98),
        optimal_under_constraint(&cs, 0.98),
    ) {
        (Some(b), Some(c)) => {
            println!("\noptimal @ ≥98% accuracy:");
            println!(
                "  baseline: {:.2} µW ({})",
                b.power_w * 1e6,
                b.point.label()
            );
            println!(
                "  CS      : {:.2} µW ({})",
                c.power_w * 1e6,
                c.point.label()
            );
            println!(
                "  power saving: {:.2}x (paper reports 3.6x at full scale)",
                b.power_w / c.power_w
            );
        }
        _ => println!("\n(constraint infeasible at this toy scale — run the fig7 bench)"),
    }
}
