//! Active (OTA-integrator) vs passive (charge-sharing) CS encoder — the
//! architectural question the paper's Section III poses: what does passivity
//! cost in signal quality, and what does it buy in power?
//!
//! Run: `cargo run --release --example active_vs_passive`

use efficsense::blocks::cs_frontend::{ChargeSharingEncoder, EncoderImperfections};
use efficsense::blocks::ActiveCsEncoder;
use efficsense::cs::basis::Basis;
use efficsense::cs::matrix::SensingMatrix;
use efficsense::cs::recon::{reconstruct_with_dictionary, OmpConfig};
use efficsense::dsp::metrics::snr_fit_db;
use efficsense::power::{DesignParams, TechnologyParams};
use efficsense::signals::{DatasetConfig, EegClass, EegDataset};

const M: usize = 150;
const N_PHI: usize = 384;

fn main() {
    let tech = TechnologyParams::gpdk045();
    let design = DesignParams::paper_defaults(8);
    let phi = SensingMatrix::srbm(M, N_PHI, 2, 21);
    let gain = 4000.0;

    // EEG frames at the LNA output scale.
    let ds = EegDataset::generate(&DatasetConfig {
        records_per_class: 2,
        duration_s: 8.0,
        ..Default::default()
    });
    let mut frames: Vec<Vec<f64>> = Vec::new();
    for r in ds
        .by_class(EegClass::Seizure)
        .chain(ds.by_class(EegClass::Normal))
    {
        let resampled = r.resampled(design.f_sample_hz());
        for chunk in resampled.samples.chunks_exact(N_PHI) {
            frames.push(chunk.iter().map(|v| v * gain).collect());
        }
    }
    println!(
        "comparing encoders over {} EEG frames (M = {M}, N_Φ = {N_PHI})\n",
        frames.len()
    );

    // Passive: charge sharing with every imperfection, leak-aware decode.
    let mut passive = ChargeSharingEncoder::new(
        phi.clone(),
        0.1e-12,
        0.5e-12,
        1.0 / design.f_sample_hz(),
        EncoderImperfections::realistic(),
        &tech,
        &design,
        7,
    );
    let decay = (-(1.0 / design.f_sample_hz()) / (0.5e-12 * design.v_ref / tech.i_leak_a)).exp();
    let passive_decode =
        efficsense::cs::charge_sharing::effective_matrix_decayed(&phi, 0.1e-12, 0.5e-12, decay);
    let passive_dict = passive_decode.matmul(&Basis::Dct.matrix(N_PHI));

    // Active: OTA integrator bank with finite gain and kT/C noise.
    let mut active = ActiveCsEncoder::new(phi.clone(), 1e-12, 1e4, true, 7);
    let active_decode = active.effective_matrix();
    let active_dict = active_decode.matmul(&Basis::Dct.matrix(N_PHI));

    let omp = OmpConfig {
        sparsity: 2 * M / 5,
        residual_tol: 1e-3,
    };
    let mut snr_passive = 0.0;
    let mut snr_active = 0.0;
    for frame in &frames {
        let yp = passive.encode_frame(frame);
        let xp = reconstruct_with_dictionary(&passive_dict, &yp, Basis::Dct, &omp);
        snr_passive += snr_fit_db(frame, &xp).min(60.0);
        let ya = active.encode_frame(frame);
        let xa = reconstruct_with_dictionary(&active_dict, &ya, Basis::Dct, &omp);
        snr_active += snr_fit_db(frame, &xa).min(60.0);
    }
    let n = frames.len() as f64;
    let p_passive = passive.power_breakdown(&tech, &design).total().value();
    let p_active = active.power_breakdown(&tech, &design).total().value();

    println!("{:<28} {:>12} {:>14}", "encoder", "SNR (dB)", "power (µW)");
    println!(
        "{:<28} {:>12.2} {:>14.3}",
        "passive charge-sharing",
        snr_passive / n,
        p_passive * 1e6
    );
    println!(
        "{:<28} {:>12.2} {:>14.3}",
        "active OTA integrators",
        snr_active / n,
        p_active * 1e6
    );
    println!(
        "\npassivity costs {:.1} dB of reconstruction SNR and saves {:.1}x encoder power —",
        snr_active / n - snr_passive / n,
        p_active / p_passive
    );
    println!("the trade the paper's charge-sharing front-end makes deliberately.");
}
