//! # efficsense
//!
//! Facade crate re-exporting the EffiCSense workspace: an architectural
//! pathfinding framework for energy-constrained mixed-signal sensor
//! front-ends, reproducing Van Assche et al., DATE 2022.
//!
//! See the individual crates for details:
//! [`dsp`], [`signals`], [`power`], [`cs`], [`blocks`], [`ml`], [`core`],
//! [`obs`].
#![deny(missing_docs)]

pub use efficsense_blocks as blocks;
pub use efficsense_core as core;
pub use efficsense_cs as cs;
pub use efficsense_dsp as dsp;
pub use efficsense_ml as ml;
pub use efficsense_obs as obs;
pub use efficsense_power as power;
pub use efficsense_signals as signals;
