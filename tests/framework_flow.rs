//! Integration test of the paper's five-step pathfinding flow, end to end.

use efficsense::core::config::{Architecture, CsConfig, SystemConfig};
use efficsense::core::detector::SeizureDetector;
use efficsense::core::goal::{DetectionGoal, GoalFunction, SnrGoal};
use efficsense::core::pareto::{optimal_under_constraint, pareto_front, Objective};
use efficsense::core::report;
use efficsense::core::space::DesignSpace;
use efficsense::core::sweep::{split_by_architecture, Metric, Sweep, SweepConfig, SweepResult};
use efficsense::signals::{DatasetConfig, EegDataset};

fn dataset() -> EegDataset {
    EegDataset::generate(&DatasetConfig {
        records_per_class: 3,
        duration_s: 4.0,
        ..Default::default()
    })
}

fn small_space() -> DesignSpace {
    DesignSpace {
        lna_noise_vrms: vec![2e-6, 12e-6],
        n_bits: vec![8],
        cs_m: vec![96],
        cs_s: vec![2],
        cs_c_hold_f: vec![0.5e-12],
        ..DesignSpace::paper_defaults()
    }
}

#[test]
fn five_step_flow_produces_actionable_results() {
    // Step 4: insert sensor data.
    let ds = dataset();
    // Steps 1–3 are embodied in the design-space template.
    let space = small_space();
    // Step 5: choose a goal function and sweep.
    let sweep = Sweep::new(SweepConfig {
        metric: Metric::DetectionAccuracy,
        threads: 1,
        ..Default::default()
    });
    let results = sweep.run(&space, &ds);
    assert_eq!(results.len(), space.len());

    // Both architectures present, both Pareto fronts non-empty.
    let (base, cs) = split_by_architecture(&results);
    assert!(!base.is_empty() && !cs.is_empty());
    let base_owned: Vec<SweepResult> = base.into_iter().cloned().collect();
    let front = pareto_front(&base_owned, Objective::MaximizeMetric);
    assert!(!front.is_empty());

    // The selection step returns a design meeting a (loose) constraint.
    let opt = optimal_under_constraint(&results, 0.5).expect("some design meets 50 %");
    assert!(opt.power_w > 0.0);

    // Reporting round-trips through CSV.
    let mut buf = Vec::new();
    report::write_csv(&mut buf, &results).expect("csv writes");
    let text = String::from_utf8(buf).expect("utf8");
    assert_eq!(text.lines().count(), results.len() + 1);
}

#[test]
fn goal_function_choice_changes_the_ranking() {
    // The paper's Fig. 7 message: SNR and detection accuracy rank designs
    // differently. Verify the two goals disagree on at least the ordering
    // direction for the CS system (poor waveform SNR, fine detection).
    let ds = dataset();
    let fs = 537.6;
    let detector = SeizureDetector::train_epoched(&ds, fs, 2.0, 1);
    let det_goal = DetectionGoal::new(detector);
    let snr_goal = SnrGoal;

    let base_cfg = {
        let mut c = SystemConfig::baseline(8);
        c.lna.noise_floor_vrms = 2e-6;
        c
    };
    let cs_cfg = {
        let mut c = SystemConfig::compressive(
            8,
            CsConfig {
                m: 150,
                ..Default::default()
            },
        );
        c.lna.noise_floor_vrms = 2e-6;
        c
    };
    let run = |cfg: SystemConfig| {
        let sim = efficsense::core::simulate::Simulator::new(cfg).expect("valid");
        ds.records
            .iter()
            .map(|r| (sim.run(&r.samples, r.fs, r.id as u64 + 1), r.label()))
            .collect::<Vec<_>>()
    };
    let base_out = run(base_cfg);
    let cs_out = run(cs_cfg);

    let snr_base = snr_goal.evaluate(&base_out);
    let snr_cs = snr_goal.evaluate(&cs_out);
    let acc_base = det_goal.evaluate(&base_out);
    let acc_cs = det_goal.evaluate(&cs_out);

    // Waveform fidelity: baseline wins clearly.
    assert!(
        snr_base > snr_cs + 3.0,
        "baseline SNR {snr_base} should clearly beat CS {snr_cs}"
    );
    // Application accuracy: CS is competitive (within a few window errors).
    assert!(
        acc_cs >= acc_base - 0.1,
        "CS accuracy {acc_cs} should be competitive with baseline {acc_base}"
    );
}

#[test]
fn sweep_respects_architecture_split_invariants() {
    let ds = dataset();
    let space = small_space();
    let results = Sweep::new(SweepConfig {
        metric: Metric::Snr,
        threads: 1,
        ..Default::default()
    })
    .run(&space, &ds);
    for r in &results {
        match r.point.architecture {
            Architecture::Baseline => {
                assert_eq!(
                    r.breakdown
                        .get(efficsense::power::BlockKind::CsEncoderLogic)
                        .value(),
                    0.0
                );
                assert!(r.area_units < 1000.0);
            }
            Architecture::CompressiveSensing => {
                assert!(
                    r.breakdown
                        .get(efficsense::power::BlockKind::CsEncoderLogic)
                        .value()
                        > 0.0
                );
                assert!(r.area_units > 10_000.0);
            }
        }
    }
}
