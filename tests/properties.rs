//! Cross-crate property-based tests (proptest) on the framework's core
//! invariants.

use efficsense::core::config::Architecture;
use efficsense::core::pareto::{pareto_front, Objective};
use efficsense::core::space::DesignPoint;
use efficsense::core::sweep::SweepResult;
use efficsense::cs::charge_sharing::{effective_matrix, eq1_weights, share, Accumulator};
use efficsense::cs::matrix::SensingMatrix;
use efficsense::power::PowerBreakdown;
use proptest::prelude::*;

fn cap() -> impl Strategy<Value = f64> {
    // 10 fF .. 10 pF
    (1.0f64..1000.0).prop_map(|v| v * 1e-14)
}

proptest! {
    #[test]
    fn share_conserves_charge(
        c1 in cap(), c2 in cap(),
        v1 in -2.0f64..2.0, v2 in -2.0f64..2.0,
    ) {
        let v = share(v1, c1, v2, c2);
        let before = c1 * v1 + c2 * v2;
        let after = (c1 + c2) * v;
        prop_assert!((before - after).abs() <= 1e-12 * before.abs().max(1e-15));
    }

    #[test]
    fn share_output_between_inputs(
        c1 in cap(), c2 in cap(),
        v1 in -2.0f64..2.0, v2 in -2.0f64..2.0,
    ) {
        let v = share(v1, c1, v2, c2);
        let lo = v1.min(v2) - 1e-12;
        let hi = v1.max(v2) + 1e-12;
        prop_assert!(v >= lo && v <= hi, "share must interpolate, got {v} outside [{lo}, {hi}]");
    }

    #[test]
    fn eq1_weights_match_behavioural_accumulator(
        c1 in cap(), c2 in cap(),
        inputs in proptest::collection::vec(-1.0f64..1.0, 1..40),
    ) {
        let mut acc = Accumulator::new(c1, c2);
        for &v in &inputs {
            acc.accumulate(v);
        }
        let w = eq1_weights(inputs.len(), c1, c2);
        let analytic: f64 = inputs.iter().zip(&w).map(|(v, w)| v * w).sum();
        prop_assert!((acc.voltage() - analytic).abs() < 1e-9);
    }

    #[test]
    fn eq1_weights_sum_below_one(
        c1 in cap(), c2 in cap(),
        n in 1usize..100,
    ) {
        let total: f64 = eq1_weights(n, c1, c2).iter().sum();
        prop_assert!(total > 0.0 && total < 1.0 + 1e-12);
    }

    #[test]
    fn srbm_always_has_s_ones_per_column(
        m in 4usize..40,
        extra in 0usize..60,
        s in 1usize..4,
        seed in any::<u64>(),
    ) {
        let s = s.min(m);
        let n = m + extra;
        let phi = SensingMatrix::srbm(m, n, s, seed);
        let dense = phi.to_dense();
        for c in 0..n {
            let ones = (0..m).filter(|&r| dense[(r, c)] == 1.0).count();
            prop_assert_eq!(ones, s);
        }
        prop_assert_eq!(phi.nnz(), n * s);
    }

    #[test]
    fn srbm_apply_equals_dense_matvec(
        m in 4usize..24,
        extra in 0usize..40,
        seed in any::<u64>(),
        scale in 0.1f64..10.0,
    ) {
        let n = m + extra;
        let phi = SensingMatrix::srbm(m, n, 2.min(m), seed);
        let x: Vec<f64> = (0..n).map(|i| scale * ((i * 37 + 11) % 17) as f64 / 17.0 - 0.5).collect();
        let fast = phi.apply(&x);
        let dense = phi.to_dense().matvec(&x);
        for (a, b) in fast.iter().zip(&dense) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn effective_matrix_behavioural_equivalence(
        m in 2usize..12,
        frames in 16usize..64,
        seed in any::<u64>(),
    ) {
        let n = frames;
        let s = 2.min(m);
        let phi = SensingMatrix::srbm(m, n, s, seed);
        let (c_s, c_h) = (0.1e-12, 0.5e-12);
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64 / 13.0 - 0.5).collect();
        let mut accs = vec![Accumulator::new(c_s, c_h); m];
        for (j, &v) in x.iter().enumerate() {
            for &r in phi.column_rows(j) {
                accs[r].accumulate(v);
            }
        }
        let eff = effective_matrix(&phi, c_s, c_h);
        let algebraic = eff.matvec(&x);
        for (acc, alg) in accs.iter().zip(&algebraic) {
            prop_assert!((acc.voltage() - alg).abs() < 1e-12);
        }
    }
}

fn fake_result(power_uw: f64, metric: f64) -> SweepResult {
    SweepResult {
        point: DesignPoint {
            architecture: Architecture::Baseline,
            lna_noise_vrms: 1e-6,
            n_bits: 8,
            m: None,
            s: None,
            c_hold_f: None,
        },
        metric,
        power_w: power_uw * 1e-6,
        breakdown: PowerBreakdown::new(),
        area_units: 0.0,
    }
}

proptest! {
    #[test]
    fn pareto_front_is_sound_and_complete(
        pts in proptest::collection::vec((0.1f64..100.0, 0.0f64..1.0), 1..40)
    ) {
        let results: Vec<SweepResult> =
            pts.iter().map(|&(p, a)| fake_result(p, a)).collect();
        let front = pareto_front(&results, Objective::MaximizeMetric);
        prop_assert!(!front.is_empty());
        // Soundness: no front member is dominated by any result.
        for f in &front {
            for r in &results {
                let dominates = r.power_w <= f.power_w
                    && r.metric >= f.metric
                    && (r.power_w < f.power_w || r.metric > f.metric);
                prop_assert!(!dominates, "front member dominated");
            }
        }
        // Completeness: every non-dominated point appears (up to duplicates).
        for r in &results {
            let dominated = results.iter().any(|o| {
                o.power_w <= r.power_w
                    && o.metric >= r.metric
                    && (o.power_w < r.power_w || o.metric > r.metric)
            });
            if !dominated {
                prop_assert!(
                    front.iter().any(|f| f.power_w == r.power_w && f.metric == r.metric),
                    "non-dominated point missing from front"
                );
            }
        }
        // Front sorted by power and metric simultaneously.
        for w in front.windows(2) {
            prop_assert!(w[0].power_w <= w[1].power_w);
            prop_assert!(w[0].metric <= w[1].metric);
        }
    }

    #[test]
    fn power_breakdown_total_is_sum(
        entries in proptest::collection::vec((0usize..8, 0.0f64..1e-3), 0..20)
    ) {
        use efficsense::power::BlockKind;
        let mut b = PowerBreakdown::new();
        let mut expect = 0.0;
        for (k, w) in entries {
            b.add(BlockKind::ALL[k], w);
            expect += w;
        }
        prop_assert!((b.total_w() - expect).abs() < 1e-15);
        let share: f64 = BlockKind::ALL.iter().map(|&k| b.fraction(k)).sum();
        if expect > 0.0 {
            prop_assert!((share - 1.0).abs() < 1e-9);
        }
    }
}
