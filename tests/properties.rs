//! Cross-crate property-style tests on the framework's core invariants,
//! run as seeded Monte-Carlo loops.

use efficsense::core::config::Architecture;
use efficsense::core::pareto::{pareto_front, Objective};
use efficsense::core::space::DesignPoint;
use efficsense::core::sweep::SweepResult;
use efficsense::cs::charge_sharing::{effective_matrix, eq1_weights, share, Accumulator};
use efficsense::cs::matrix::SensingMatrix;
use efficsense::dsp::approx::total_eq;
use efficsense::power::units::Watts;
use efficsense::power::PowerBreakdown;
use efficsense_rng::Rng64;

const CASES: u64 = 96;

/// Draw a capacitance in 10 fF .. 10 pF.
fn cap(g: &mut Rng64) -> f64 {
    g.uniform(1.0, 1000.0) * 1e-14
}

#[test]
fn share_conserves_charge() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x5AA2 + case);
        let (c1, c2) = (cap(&mut g), cap(&mut g));
        let v1 = g.uniform(-2.0, 2.0);
        let v2 = g.uniform(-2.0, 2.0);
        let v = share(v1, c1, v2, c2);
        let before = c1 * v1 + c2 * v2;
        let after = (c1 + c2) * v;
        assert!(
            (before - after).abs() <= 1e-12 * before.abs().max(1e-15),
            "case {case}"
        );
    }
}

#[test]
fn share_output_between_inputs() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x5AA3 + case);
        let (c1, c2) = (cap(&mut g), cap(&mut g));
        let v1 = g.uniform(-2.0, 2.0);
        let v2 = g.uniform(-2.0, 2.0);
        let v = share(v1, c1, v2, c2);
        let lo = v1.min(v2) - 1e-12;
        let hi = v1.max(v2) + 1e-12;
        assert!(
            v >= lo && v <= hi,
            "case {case}: share must interpolate, got {v} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn eq1_weights_match_behavioural_accumulator() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xE910 + case);
        let (c1, c2) = (cap(&mut g), cap(&mut g));
        let n = g.range(1, 40);
        let inputs: Vec<f64> = (0..n).map(|_| g.uniform(-1.0, 1.0)).collect();
        let mut acc = Accumulator::new(c1, c2);
        for &v in &inputs {
            acc.accumulate(v);
        }
        let w = eq1_weights(inputs.len(), c1, c2);
        let analytic: f64 = inputs.iter().zip(&w).map(|(v, w)| v * w).sum();
        assert!((acc.voltage() - analytic).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn eq1_weights_sum_below_one() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xE911 + case);
        let (c1, c2) = (cap(&mut g), cap(&mut g));
        let n = g.range(1, 100);
        let total: f64 = eq1_weights(n, c1, c2).iter().sum();
        assert!(total > 0.0 && total < 1.0 + 1e-12, "case {case}");
    }
}

#[test]
fn srbm_always_has_s_ones_per_column() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x52B0 + case);
        let m = g.range(4, 40);
        let n = m + g.range(0, 60);
        let s = g.range(1, 4).min(m);
        let seed = g.next_u64();
        let phi = SensingMatrix::srbm(m, n, s, seed);
        let dense = phi.to_dense();
        for c in 0..n {
            let ones = (0..m).filter(|&r| total_eq(dense[(r, c)], 1.0)).count();
            assert_eq!(ones, s, "case {case}");
        }
        assert_eq!(phi.nnz(), n * s, "case {case}");
    }
}

#[test]
fn srbm_apply_equals_dense_matvec() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x52B1 + case);
        let m = g.range(4, 24);
        let n = m + g.range(0, 40);
        let seed = g.next_u64();
        let scale = g.uniform(0.1, 10.0);
        let phi = SensingMatrix::srbm(m, n, 2.min(m), seed);
        let x: Vec<f64> = (0..n)
            .map(|i| scale * ((i * 37 + 11) % 17) as f64 / 17.0 - 0.5)
            .collect();
        let fast = phi.apply(&x);
        let dense = phi.to_dense().matvec(&x);
        for (a, b) in fast.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-10, "case {case}");
        }
    }
}

#[test]
fn effective_matrix_behavioural_equivalence() {
    for case in 0..CASES {
        let mut g = Rng64::new(0xEFF0 + case);
        let m = g.range(2, 12);
        let n = g.range(16, 64);
        let seed = g.next_u64();
        let s = 2.min(m);
        let phi = SensingMatrix::srbm(m, n, s, seed);
        let (c_s, c_h) = (0.1e-12, 0.5e-12);
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 7 + 3) % 13) as f64 / 13.0 - 0.5)
            .collect();
        let mut accs = vec![Accumulator::new(c_s, c_h); m];
        for (j, &v) in x.iter().enumerate() {
            for &r in phi.column_rows(j) {
                accs[r].accumulate(v);
            }
        }
        let eff = effective_matrix(&phi, c_s, c_h);
        let algebraic = eff.matvec(&x);
        for (acc, alg) in accs.iter().zip(&algebraic) {
            assert!((acc.voltage() - alg).abs() < 1e-12, "case {case}");
        }
    }
}

fn fake_result(power_uw: f64, metric: f64) -> SweepResult {
    SweepResult {
        point: DesignPoint {
            architecture: Architecture::Baseline,
            lna_noise_vrms: 1e-6,
            n_bits: 8,
            m: None,
            s: None,
            c_hold_f: None,
        },
        metric,
        power_w: power_uw * 1e-6,
        breakdown: PowerBreakdown::new(),
        area_units: 0.0,
    }
}

#[test]
fn pareto_front_is_sound_and_complete() {
    for case in 0..CASES {
        let mut g = Rng64::new(0x9A2E + case);
        let n_pts = g.range(1, 40);
        let results: Vec<SweepResult> = (0..n_pts)
            .map(|_| fake_result(g.uniform(0.1, 100.0), g.f64()))
            .collect();
        let front = pareto_front(&results, Objective::MaximizeMetric);
        assert!(!front.is_empty(), "case {case}");
        // Soundness: no front member is dominated by any result.
        for f in &front {
            for r in &results {
                let dominates = r.power_w <= f.power_w
                    && r.metric >= f.metric
                    && (r.power_w < f.power_w || r.metric > f.metric);
                assert!(!dominates, "case {case}: front member dominated");
            }
        }
        // Completeness: every non-dominated point appears (up to duplicates).
        for r in &results {
            let dominated = results.iter().any(|o| {
                o.power_w <= r.power_w
                    && o.metric >= r.metric
                    && (o.power_w < r.power_w || o.metric > r.metric)
            });
            if !dominated {
                assert!(
                    front
                        .iter()
                        .any(|f| total_eq(f.power_w, r.power_w) && total_eq(f.metric, r.metric)),
                    "case {case}: non-dominated point missing from front"
                );
            }
        }
        // Front sorted by power and metric simultaneously.
        for w in front.windows(2) {
            assert!(w[0].power_w <= w[1].power_w, "case {case}");
            assert!(w[0].metric <= w[1].metric, "case {case}");
        }
    }
}

#[test]
fn power_breakdown_total_is_sum() {
    use efficsense::power::BlockKind;
    for case in 0..CASES {
        let mut g = Rng64::new(0x70AD + case);
        let n_entries = g.range(0, 20);
        let mut b = PowerBreakdown::new();
        let mut expect = 0.0;
        for _ in 0..n_entries {
            let k = g.index(8);
            let w = g.uniform(0.0, 1e-3);
            b.add(BlockKind::ALL[k], Watts(w));
            expect += w;
        }
        assert!((b.total().value() - expect).abs() < 1e-15, "case {case}");
        let share: f64 = BlockKind::ALL.iter().map(|&k| b.fraction(k)).sum();
        if expect > 0.0 {
            assert!((share - 1.0).abs() < 1e-9, "case {case}");
        }
    }
}
