//! Tests pinning the two decoder design claims of DESIGN.md §8:
//! leakage-aware decoding and noise-matched (discrepancy) stopping.

use efficsense::blocks::cs_frontend::{ChargeSharingEncoder, EncoderImperfections};
use efficsense::cs::basis::Basis;
use efficsense::cs::charge_sharing::{effective_matrix, effective_matrix_decayed};
use efficsense::cs::matrix::SensingMatrix;
use efficsense::cs::recon::{reconstruct_with_dictionary, OmpConfig};
use efficsense::dsp::metrics::snr_fit_db;
use efficsense::power::{DesignParams, TechnologyParams};
use efficsense::signals::{DatasetConfig, EegClass, EegDataset};

const M: usize = 150;
const N_PHI: usize = 384;
const C_S: f64 = 0.1e-12;
const C_H: f64 = 0.5e-12;

fn eeg_frames(gain: f64, n_frames: usize) -> Vec<Vec<f64>> {
    let design = DesignParams::paper_defaults(8);
    let ds = EegDataset::generate(&DatasetConfig {
        records_per_class: 2,
        duration_s: 8.0,
        ..Default::default()
    });
    let mut frames = Vec::new();
    for r in ds
        .by_class(EegClass::Seizure)
        .chain(ds.by_class(EegClass::Normal))
    {
        let resampled = r.resampled(design.f_sample_hz());
        for chunk in resampled.samples.chunks_exact(N_PHI) {
            frames.push(chunk.iter().map(|v| v * gain).collect());
            if frames.len() >= n_frames {
                return frames;
            }
        }
    }
    frames
}

fn decode_snr(
    frames: &[Vec<f64>],
    enc: &mut ChargeSharingEncoder,
    decode: &efficsense::cs::Matrix,
) -> f64 {
    let dict = decode.matmul(&Basis::Dct.matrix(N_PHI));
    let omp = OmpConfig {
        sparsity: 2 * M / 5,
        residual_tol: 1e-3,
    };
    let mut acc = 0.0;
    for frame in frames {
        let y = enc.encode_frame(frame);
        let xh = reconstruct_with_dictionary(&dict, &y, Basis::Dct, &omp);
        acc += snr_fit_db(frame, &xh).min(60.0);
    }
    acc / frames.len() as f64
}

#[test]
fn leak_aware_decoding_beats_leak_blind_decoding() {
    let tech = TechnologyParams::gpdk045();
    let design = DesignParams::paper_defaults(8);
    let phi = SensingMatrix::srbm(M, N_PHI, 2, 0xDEC0);
    let frames = eeg_frames(4000.0, 10);
    let period = 1.0 / design.f_sample_hz();
    let mk_enc = || {
        ChargeSharingEncoder::new(
            phi.clone(),
            C_S,
            C_H,
            period,
            EncoderImperfections {
                mismatch: false,
                ktc_noise: false,
                leakage: true,
            },
            &tech,
            &design,
            5,
        )
    };
    let blind = effective_matrix(&phi, C_S, C_H);
    let decay = (-(period) / (C_H * design.v_ref / tech.i_leak_a)).exp();
    let aware = effective_matrix_decayed(&phi, C_S, C_H, decay);
    let snr_blind = decode_snr(&frames, &mut mk_enc(), &blind);
    let snr_aware = decode_snr(&frames, &mut mk_enc(), &aware);
    assert!(
        snr_aware > snr_blind + 0.2,
        "leak-aware decode ({snr_aware:.2} dB) must beat leak-blind ({snr_blind:.2} dB)"
    );
}

#[test]
fn decayed_matrix_reduces_to_plain_when_leak_free() {
    let phi = SensingMatrix::srbm(16, 64, 2, 3);
    let a = effective_matrix(&phi, C_S, C_H);
    let b = effective_matrix_decayed(&phi, C_S, C_H, 1.0);
    assert_eq!(a, b);
}

#[test]
fn discrepancy_stopping_helps_at_high_noise() {
    // Simulate a noisy front-end: measurements carry white noise. A decoder
    // that fits to machine precision chases the noise; one that stops at the
    // noise floor (the simulator's policy) reconstructs better.
    use efficsense::signals::noise::Gaussian;
    let phi = SensingMatrix::srbm(M, N_PHI, 2, 0xD15C);
    let eff = effective_matrix(&phi, C_S, C_H);
    let dict = eff.matmul(&Basis::Dct.matrix(N_PHI));
    let frames = eeg_frames(4000.0, 10);
    let mut rng = Gaussian::new(9);
    let sigma = 8e-6 * 4000.0; // 8 µV input-referred at gain 4000
    let mean_w2 = (0..eff.rows())
        .map(|r| eff.row(r).iter().map(|w| w * w).sum::<f64>())
        .sum::<f64>()
        / eff.rows() as f64;
    let noise_norm = (sigma * sigma * mean_w2 * M as f64).sqrt();
    let mut snr_greedy = 0.0;
    let mut snr_matched = 0.0;
    for frame in &frames {
        // Noise enters through the weights, like the sampled LNA noise does.
        let noisy: Vec<f64> = frame.iter().map(|v| v + rng.sample_scaled(sigma)).collect();
        let y = eff.matvec(&noisy);
        let y_norm = efficsense::cs::linalg::norm2(&y).max(1e-300);
        let greedy = OmpConfig {
            sparsity: 2 * M / 5,
            residual_tol: 1e-6,
        };
        let matched = OmpConfig {
            sparsity: 2 * M / 5,
            residual_tol: (noise_norm / y_norm).clamp(1e-4, 0.9),
        };
        let xg = reconstruct_with_dictionary(&dict, &y, Basis::Dct, &greedy);
        let xm = reconstruct_with_dictionary(&dict, &y, Basis::Dct, &matched);
        snr_greedy += snr_fit_db(frame, &xg).min(60.0);
        snr_matched += snr_fit_db(frame, &xm).min(60.0);
    }
    let n = frames.len() as f64;
    assert!(
        snr_matched / n > snr_greedy / n + 0.5,
        "noise-matched stopping ({:.2} dB) must beat greedy fitting ({:.2} dB)",
        snr_matched / n,
        snr_greedy / n
    );
}
