//! Cross-crate integration tests: complete acquisition chains on synthetic
//! EEG, checking the paper's qualitative claims end to end.

use efficsense::core::config::{CsConfig, SystemConfig};
use efficsense::core::simulate::Simulator;
use efficsense::dsp::metrics::snr_fit_db;
use efficsense::power::BlockKind;
use efficsense::signals::{DatasetConfig, EegClass, EegDataset};

fn dataset() -> EegDataset {
    EegDataset::generate(&DatasetConfig {
        records_per_class: 2,
        duration_s: 6.0,
        ..Default::default()
    })
}

#[test]
fn baseline_chain_preserves_eeg_morphology() {
    let ds = dataset();
    let mut cfg = SystemConfig::baseline(8);
    cfg.lna.noise_floor_vrms = 1e-6;
    let sim = Simulator::new(cfg).expect("valid config");
    for r in &ds.records {
        let out = sim.run(&r.samples, r.fs, r.id as u64);
        let snr = snr_fit_db(&out.reference, &out.input_referred);
        assert!(snr > 10.0, "{}: baseline SNR {snr} dB too low", r.class);
    }
}

#[test]
fn cs_chain_reconstructs_seizure_morphology_best() {
    // Seizure records are the most compressible (strong low-frequency
    // rhythm), so CS reconstruction should work at least as well on them.
    let ds = dataset();
    let cfg = SystemConfig::compressive(
        8,
        CsConfig {
            m: 150,
            ..Default::default()
        },
    );
    let sim = Simulator::new(cfg).expect("valid config");
    let mean_snr = |class: EegClass| {
        let recs: Vec<_> = ds.by_class(class).collect();
        recs.iter()
            .map(|r| {
                let out = sim.run(&r.samples, r.fs, r.id as u64);
                snr_fit_db(&out.reference, &out.input_referred)
            })
            .sum::<f64>()
            / recs.len() as f64
    };
    let seiz = mean_snr(EegClass::Seizure);
    let norm = mean_snr(EegClass::Normal);
    assert!(seiz > 5.0, "seizure reconstruction SNR {seiz}");
    assert!(norm > 0.0, "normal reconstruction SNR {norm}");
}

#[test]
fn power_hierarchy_matches_paper_fig8() {
    // Baseline: transmitter + LNA dominate. CS with M=75: TX collapses.
    let ds = dataset();
    let r = &ds.records[0];
    let base = Simulator::new(SystemConfig::baseline(8)).expect("valid");
    let out_b = base.run(&r.samples, r.fs, 1);
    let cs = Simulator::new(SystemConfig::compressive(
        8,
        CsConfig {
            m: 75,
            ..Default::default()
        },
    ))
    .expect("valid");
    let out_c = cs.run(&r.samples, r.fs, 1);

    let tx_b = out_b.power.get(BlockKind::Transmitter);
    let tx_c = out_c.power.get(BlockKind::Transmitter);
    assert!(
        (tx_c / tx_b - 75.0 / 384.0).abs() < 0.01,
        "TX scales with M/N_Φ"
    );
    // Digital overhead appears only in the CS chain.
    assert_eq!(out_b.power.get(BlockKind::CsEncoderLogic).value(), 0.0);
    assert!(out_c.power.get(BlockKind::CsEncoderLogic).value() > 0.1e-6);
    // The paper's headline direction: at equal (moderate) noise floors the
    // CS system total is lower.
    assert!(
        out_c.total_power_w() < out_b.total_power_w(),
        "CS {} vs baseline {}",
        out_c.total_power_w(),
        out_b.total_power_w()
    );
}

#[test]
fn noise_floor_trade_off_is_monotone_in_power() {
    let powers: Vec<f64> = [1e-6, 3e-6, 10e-6, 20e-6]
        .iter()
        .map(|&vn| {
            let mut cfg = SystemConfig::baseline(8);
            cfg.lna.noise_floor_vrms = vn;
            Simulator::new(cfg)
                .expect("valid")
                .power_breakdown(1.0)
                .total()
                .value()
        })
        .collect();
    for w in powers.windows(2) {
        assert!(
            w[1] <= w[0],
            "total power must fall as tolerated noise rises"
        );
    }
}

#[test]
fn resolution_scales_quantisation_quality() {
    let ds = dataset();
    let r = ds.by_class(EegClass::Seizure).next().expect("has seizure");
    let snr_at_bits = |bits: u32| {
        let mut cfg = SystemConfig::baseline(bits);
        // Make quantisation the bottleneck.
        cfg.lna.noise_floor_vrms = 1e-7;
        cfg.adc.comparator_noise_v = 0.0;
        let sim = Simulator::new(cfg).expect("valid");
        let out = sim.run(&r.samples, r.fs, 3);
        snr_fit_db(&out.reference, &out.input_referred)
    };
    let snr6 = snr_at_bits(6);
    let snr8 = snr_at_bits(8);
    assert!(
        snr8 > snr6 + 6.0,
        "two extra bits must buy at least ~6 dB (got {snr6} vs {snr8})"
    );
}

#[test]
fn cs_words_scale_with_m() {
    let ds = dataset();
    let r = &ds.records[0];
    let words_at = |m: usize| {
        let cfg = SystemConfig::compressive(
            8,
            CsConfig {
                m,
                ..Default::default()
            },
        );
        Simulator::new(cfg)
            .expect("valid")
            .run(&r.samples, r.fs, 1)
            .words
    };
    let w75 = words_at(75);
    let w192 = words_at(192);
    // Same frame count, so words scale exactly with M.
    assert!((w192 as f64 / w75 as f64 - 192.0 / 75.0).abs() < 1e-9);
    assert_eq!(w75 % 75, 0, "words are whole frames of M measurements");
}

#[test]
fn mismatch_and_leakage_cost_reconstruction_quality() {
    use efficsense::blocks::cs_frontend::EncoderImperfections;
    let ds = dataset();
    let r = ds.by_class(EegClass::Seizure).next().expect("has seizure");
    let snr_with = |imp: EncoderImperfections| {
        let mut cfg = SystemConfig::compressive(
            8,
            CsConfig {
                m: 150,
                imperfections: imp,
                ..Default::default()
            },
        );
        cfg.lna.noise_floor_vrms = 1e-6;
        let sim = Simulator::new(cfg).expect("valid");
        let out = sim.run(&r.samples, r.fs, 5);
        snr_fit_db(&out.reference, &out.input_referred)
    };
    let ideal = snr_with(EncoderImperfections::ideal());
    let real = snr_with(EncoderImperfections::realistic());
    assert!(
        ideal >= real - 0.5,
        "imperfections must not improve quality (ideal {ideal} vs real {real})"
    );
}
